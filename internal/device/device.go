// Package device abstracts where tensor computation runs and how its
// costs are charged to the simulation's virtual clock.
//
// The TensorFlow and TensorFlow Lite engines execute real numerics but
// report their work (FLOPs and bytes of memory traffic) to a Device; the
// device converts that work into virtual time according to the execution
// environment it models: a plain CPU, a SCONE enclave in HW or SIM mode,
// or a no-cost null device for unit tests.
package device

import (
	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/vtime"
)

// Device receives work reports from compute kernels.
type Device interface {
	// Name identifies the device in logs and experiment output.
	Name() string
	// Threads is the number of execution contexts kernels may use; it
	// also sets the parallelism assumed when converting FLOPs to time.
	Threads() int
	// Compute charges flops of arithmetic across the device's threads.
	Compute(flops int64)
	// Access charges bytes of memory traffic. streaming marks sequential
	// read-only traffic (cheap to page), as opposed to reused read-write
	// working sets (expensive to page once over the EPC).
	Access(bytes int64, streaming bool)
	// Alloc registers a writable long-lived allocation (arenas,
	// variables); AllocReadOnly registers read-only data (streamed
	// weights), which enclaves can evict cheaply. Free releases either.
	Alloc(name string, bytes int64)
	AllocReadOnly(name string, bytes int64)
	Free(name string)
	// Clock returns the virtual clock costs are charged to.
	Clock() *vtime.Clock
}

// Null is a Device that charges nothing. Useful for numerical unit tests.
type Null struct{ clock vtime.Clock }

var _ Device = (*Null)(nil)

// NewNull creates a no-cost device.
func NewNull() *Null { return &Null{} }

func (n *Null) Name() string                { return "null" }
func (n *Null) Threads() int                { return 1 }
func (n *Null) Compute(int64)               {}
func (n *Null) Access(int64, bool)          {}
func (n *Null) Alloc(string, int64)         {}
func (n *Null) AllocReadOnly(string, int64) {}
func (n *Null) Free(string)                 {}
func (n *Null) Clock() *vtime.Clock         { return &n.clock }

// CPU models an untrusted host CPU with a given libc flavor. The libc
// factor captures the small performance differences between glibc and
// musl that the paper discusses in §5.3 ("glibc has the edge over musl in
// most areas").
type CPU struct {
	name       string
	params     sgx.Params
	clock      *vtime.Clock
	threads    int
	libcFactor float64
}

var _ Device = (*CPU)(nil)

// Libc factors relative to glibc.
const (
	LibcGlibcFactor = 1.0
	LibcMuslFactor  = 1.03
)

// NewCPU creates a CPU device charging the given clock.
func NewCPU(name string, params sgx.Params, clock *vtime.Clock, threads int, libcFactor float64) *CPU {
	if threads < 1 {
		threads = 1
	}
	if libcFactor <= 0 {
		libcFactor = 1.0
	}
	return &CPU{name: name, params: params, clock: clock, threads: threads, libcFactor: libcFactor}
}

func (c *CPU) Name() string                { return c.name }
func (c *CPU) Threads() int                { return c.threads }
func (c *CPU) Clock() *vtime.Clock         { return c.clock }
func (c *CPU) Alloc(string, int64)         {}
func (c *CPU) AllocReadOnly(string, int64) {}
func (c *CPU) Free(string)                 {}

func (c *CPU) Compute(flops int64) {
	d := c.params.ComputeTime(float64(flops)*c.libcFactor, c.threads)
	c.clock.Advance(d)
}

func (c *CPU) Access(bytes int64, _ bool) {
	c.clock.Advance(c.params.MemTime(float64(bytes) * c.libcFactor))
}

// Enclave is a Device backed by a simulated SGX enclave: compute is full
// speed (modulo the runtime's libc factor), memory traffic pays MEE and
// paging costs per the enclave's mode and working set.
type Enclave struct {
	name    string
	enclave *sgx.Enclave
	threads int
	factor  float64
}

var _ Device = (*Enclave)(nil)

// NewEnclave wraps an enclave as a compute device with the given thread
// count. libcFactor scales compute cost for the runtime's libc flavor
// (SCONE's libc is musl-derived); pass 0 for 1.0.
func NewEnclave(name string, e *sgx.Enclave, threads int, libcFactor float64) *Enclave {
	if threads < 1 {
		threads = 1
	}
	if libcFactor <= 0 {
		libcFactor = 1.0
	}
	return &Enclave{name: name, enclave: e, threads: threads, factor: libcFactor}
}

func (d *Enclave) Name() string        { return d.name }
func (d *Enclave) Threads() int        { return d.threads }
func (d *Enclave) Clock() *vtime.Clock { return d.enclave.Clock() }

func (d *Enclave) Compute(flops int64) {
	d.enclave.Compute(int64(float64(flops)*d.factor), d.threads)
}

func (d *Enclave) Access(bytes int64, streaming bool) {
	pattern := sgx.AccessRandom
	if streaming {
		pattern = sgx.AccessStreaming
	}
	d.enclave.Access(bytes, pattern)
}

func (d *Enclave) Alloc(name string, bytes int64)         { d.enclave.Alloc(name, bytes) }
func (d *Enclave) AllocReadOnly(name string, bytes int64) { d.enclave.AllocReadOnly(name, bytes) }
func (d *Enclave) Free(name string)                       { d.enclave.Free(name) }

// Underlying returns the wrapped enclave.
func (d *Enclave) Underlying() *sgx.Enclave { return d.enclave }
