package device

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/vtime"
)

func newClockAndParams() (*vtime.Clock, sgx.Params) {
	return new(vtime.Clock), sgx.DefaultParams()
}

func TestInterfaceCompliance(t *testing.T) {
	// Compile-time checks live here because the package has no other
	// var block; keeping them in a test avoids exporting test-only
	// globals.
	var _ Device = (*CPU)(nil)
	var _ Device = (*Enclave)(nil)
	var _ Device = (*Null)(nil)
}

func TestCPUComputeChargesClock(t *testing.T) {
	clock, params := newClockAndParams()
	dev := NewCPU("host", params, clock, 1, LibcGlibcFactor)
	before := clock.Now()
	dev.Compute(int64(params.CoreFLOPS)) // one core-second of work
	charged := clock.Now() - before
	if charged < 900*time.Millisecond || charged > 1100*time.Millisecond {
		t.Fatalf("one core-second charged %v", charged)
	}
}

func TestCPUThreadsDivideComputeTime(t *testing.T) {
	clock1, params := newClockAndParams()
	one := NewCPU("host1", params, clock1, 1, LibcGlibcFactor)
	clock4, _ := newClockAndParams()
	four := NewCPU("host4", params, clock4, 4, LibcGlibcFactor)

	const work = 1 << 30
	one.Compute(work)
	four.Compute(work)
	ratio := float64(clock1.Now()) / float64(clock4.Now())
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("4-thread speedup %.2f, want ≈ 4", ratio)
	}
}

func TestCPUHyperThreadEfficiency(t *testing.T) {
	// Beyond the physical core count extra threads only add the
	// hyper-thread margin (the paper's desktop has 4 cores, 8 HT).
	_, params := newClockAndParams()
	clock4 := new(vtime.Clock)
	clock8 := new(vtime.Clock)
	phys := NewCPU("c4", params, clock4, params.PhysicalCores, LibcGlibcFactor)
	ht := NewCPU("c8", params, clock8, 2*params.PhysicalCores, LibcGlibcFactor)
	const work = 1 << 30
	phys.Compute(work)
	ht.Compute(work)
	ratio := float64(clock4.Now()) / float64(clock8.Now())
	if ratio <= 1.0 {
		t.Fatalf("hyper-threads gave no speedup (%.2f)", ratio)
	}
	if ratio >= 1.9 {
		t.Fatalf("hyper-threads counted as full cores (%.2f)", ratio)
	}
}

func TestCPUMuslFactorSlower(t *testing.T) {
	_, params := newClockAndParams()
	clockG := new(vtime.Clock)
	clockM := new(vtime.Clock)
	glibc := NewCPU("g", params, clockG, 1, LibcGlibcFactor)
	musl := NewCPU("m", params, clockM, 1, LibcMuslFactor)
	const work = 1 << 30
	glibc.Compute(work)
	musl.Compute(work)
	if clockM.Now() <= clockG.Now() {
		t.Fatalf("musl (%v) not slower than glibc (%v)", clockM.Now(), clockG.Now())
	}
}

func TestCPUAccessChargesBandwidth(t *testing.T) {
	clock, params := newClockAndParams()
	dev := NewCPU("host", params, clock, 1, LibcGlibcFactor)
	dev.Access(int64(params.MemBandwidth), false) // one second of traffic
	if got := clock.Now(); got < 900*time.Millisecond || got > 1100*time.Millisecond {
		t.Fatalf("one bandwidth-second charged %v", got)
	}
}

func TestCPUAllocFreeAreNoops(t *testing.T) {
	clock, params := newClockAndParams()
	dev := NewCPU("host", params, clock, 1, LibcGlibcFactor)
	dev.Alloc("arena", 1<<30)
	dev.AllocReadOnly("weights", 1<<30)
	dev.Free("arena")
	if clock.Now() != 0 {
		t.Fatalf("allocation charged time on a plain CPU: %v", clock.Now())
	}
	if dev.Name() != "host" || dev.Threads() != 1 || dev.Clock() != clock {
		t.Fatal("accessor mismatch")
	}
}

func newEnclave(t *testing.T, mode sgx.Mode) *sgx.Enclave {
	t.Helper()
	platform, err := sgx.NewPlatform("dev-node", sgx.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := platform.CreateEnclave(sgx.SyntheticImage("app", 1<<20, 1<<20), mode)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(enclave.Destroy)
	return enclave
}

func TestEnclaveHWComputeSlowerThanSIM(t *testing.T) {
	hwEnc := newEnclave(t, sgx.ModeHW)
	simEnc := newEnclave(t, sgx.ModeSIM)
	hw := NewEnclave("hw", hwEnc, 1, 0)
	sim := NewEnclave("sim", simEnc, 1, 0)
	const work = 1 << 30
	hwBefore := hw.Clock().Now()
	hw.Compute(work)
	hwCost := hw.Clock().Now() - hwBefore
	simBefore := sim.Clock().Now()
	sim.Compute(work)
	simCost := sim.Clock().Now() - simBefore
	if hwCost <= simCost {
		t.Fatalf("HW compute (%v) not slower than SIM (%v)", hwCost, simCost)
	}
}

func TestEnclaveStreamingAccessCheaperThanRandom(t *testing.T) {
	enc := newEnclave(t, sgx.ModeHW)
	dev := NewEnclave("hw", enc, 1, 0)
	// Build a working set past the EPC so paging costs apply.
	dev.Alloc("set", 160<<20)
	const traffic = 64 << 20
	before := dev.Clock().Now()
	dev.Access(traffic, true)
	stream := dev.Clock().Now() - before
	before = dev.Clock().Now()
	dev.Access(traffic, false)
	random := dev.Clock().Now() - before
	if random <= stream {
		t.Fatalf("random access (%v) not dearer than streaming (%v)", random, stream)
	}
}

func TestEnclaveAllocReadOnlyCheaperPastEPC(t *testing.T) {
	// Read-only residency (streamed weights) must charge less than
	// writable residency once past the EPC — the TFLite-vs-TF mechanism.
	run := func(readonly bool) time.Duration {
		enc := newEnclave(t, sgx.ModeHW)
		dev := NewEnclave("hw", enc, 1, 0)
		if readonly {
			dev.AllocReadOnly("set", 160<<20)
		} else {
			dev.Alloc("set", 160<<20)
		}
		before := dev.Clock().Now()
		dev.Access(128<<20, true)
		return dev.Clock().Now() - before
	}
	ro, rw := run(true), run(false)
	if ro >= rw {
		t.Fatalf("read-only residency (%v) not cheaper than writable (%v)", ro, rw)
	}
}

func TestEnclaveFreeShrinksWorkingSet(t *testing.T) {
	enc := newEnclave(t, sgx.ModeHW)
	dev := NewEnclave("hw", enc, 1, 0)
	dev.Alloc("set", 160<<20)
	before := dev.Clock().Now()
	dev.Access(32<<20, false)
	pressured := dev.Clock().Now() - before
	dev.Free("set")
	before = dev.Clock().Now()
	dev.Access(32<<20, false)
	relieved := dev.Clock().Now() - before
	if relieved >= pressured {
		t.Fatalf("free did not relieve paging: %v vs %v", relieved, pressured)
	}
}

func TestNullDeviceChargesNothing(t *testing.T) {
	dev := NewNull()
	dev.Compute(1 << 40)
	dev.Access(1<<40, false)
	dev.Alloc("x", 1<<40)
	dev.AllocReadOnly("y", 1<<40)
	dev.Free("x")
	if dev.Clock().Now() != 0 {
		t.Fatalf("null device charged %v", dev.Clock().Now())
	}
	if dev.Threads() <= 0 {
		t.Fatal("null device has no threads")
	}
}

func TestComputeMonotonicProperty(t *testing.T) {
	// Property: compute cost is monotonically non-decreasing in flops.
	clock, params := newClockAndParams()
	dev := NewCPU("host", params, clock, 2, LibcGlibcFactor)
	f := func(a, b uint32) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		before := clock.Now()
		dev.Compute(lo)
		costLo := clock.Now() - before
		before = clock.Now()
		dev.Compute(hi)
		costHi := clock.Now() - before
		return costHi >= costLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
