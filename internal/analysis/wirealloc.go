package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// WireAlloc reports allocations sized by attacker-controlled wire
// bytes. In the decoder packages (dist codec/protocol/checkpoint,
// federated mask/codec, serving wire, core frames, cas protocol) an
// integer decoded from a frame — a binary.LittleEndian.Uint32, a
// readUint helper result, a byte plucked out of the payload — is an
// allocation hint the peer chose. Passing it to make(), or letting it
// bound an append loop, without first comparing it against a limit
// lets a 4-byte header demand gigabytes.
//
// The check is a per-function taint pass: values produced by binary
// reads and read* helpers are tainted; arithmetic over tainted values
// stays tainted; appearing in an if-statement comparison sanitizes a
// variable (the decoders' `if n > uint64(r.Len())`-style guards).
// Tainted make() sizes and tainted for-append bounds are flagged.
var WireAlloc = &Analyzer{
	Name: "wirealloc",
	Doc: `no attacker-sized allocations in wire decoders

An integer decoded from wire bytes must be bounds-checked before it
sizes a make() or bounds an append loop. Compare it against the
remaining payload or a protocol limit first — a corrupt frame is an
error, not an allocation hint to honour.`,
	Run: runWireAlloc,
}

var readHelperName = regexp.MustCompile(`(?i)^read`)

func runWireAlloc(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), "dist", "federated", "serving", "core", "cas") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &wireAllocWalker{pass: pass, state: map[*types.Var]*taintState{}}
			w.stmts(fd.Body.List)
		}
	}
	return nil
}

// taintState tracks one variable: where it became tainted and where
// (if anywhere) a comparison sanitized it.
type taintState struct {
	taintPos    token.Pos
	sanitizePos token.Pos // NoPos until sanitized
}

func (ts *taintState) taintedAt(pos token.Pos) bool {
	return ts != nil && ts.taintPos < pos && (ts.sanitizePos == token.NoPos || ts.sanitizePos > pos)
}

type wireAllocWalker struct {
	pass  *Pass
	state map[*types.Var]*taintState
}

// stmts walks statements in source order, updating taint state and
// reporting tainted allocations as they appear.
func (w *wireAllocWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *wireAllocWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.checkExprs(s.Rhs)
		w.assign(s.Lhs, s.Rhs, s.Tok == token.ASSIGN || s.Tok == token.DEFINE)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					w.checkExprs(vs.Values)
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					w.assign(lhs, vs.Values, true)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.checkExpr(s.Cond)
		w.sanitizeComparisons(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond)
			w.checkLoopBound(s)
		}
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.checkExpr(s.X)
		w.stmts(s.Body.List)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.checkExprs(cc.List)
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.ExprStmt:
		w.checkExpr(s.X)
	case *ast.ReturnStmt:
		w.checkExprs(s.Results)
	case *ast.GoStmt:
		w.checkExpr(s.Call)
	case *ast.DeferStmt:
		w.checkExpr(s.Call)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.checkExpr(s.Value)
	}
}

// assign propagates taint from RHS expressions to LHS variables. For
// op-assignments (n += 4) the old value persists, so existing taint is
// kept rather than overwritten.
func (w *wireAllocWalker) assign(lhs, rhs []ast.Expr, plain bool) {
	taintLHS := func(e ast.Expr, pos token.Pos) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		v := w.objOf(id)
		if v == nil {
			return
		}
		w.state[v] = &taintState{taintPos: pos}
	}
	clearLHS := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if v := w.objOf(id); v != nil {
				delete(w.state, v)
			}
		}
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		// Multi-value call: taint the integer-typed results of wire
		// read helpers (n, err := readUint(r, 4)).
		if call, ok := rhs[0].(*ast.CallExpr); ok && w.isWireRead(call) {
			for _, l := range lhs {
				if id, ok := l.(*ast.Ident); ok {
					if v := w.objOf(id); v != nil && isInteger(v.Type()) {
						w.state[v] = &taintState{taintPos: call.Pos()}
					}
				}
			}
		}
		return
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		if w.taintedExpr(rhs[i]) {
			taintLHS(l, rhs[i].Pos())
		} else if plain {
			clearLHS(l)
		}
	}
}

// sanitizeComparisons marks every variable mentioned in a comparison
// inside an if condition as bounds-checked from here on.
func (w *wireAllocWalker) sanitizeComparisons(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if v := w.objOf(id); v != nil {
							if ts := w.state[v]; ts != nil && ts.sanitizePos == token.NoPos {
								ts.sanitizePos = cond.Pos()
							}
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// checkExprs/checkExpr look for make() calls whose size arguments are
// tainted, anywhere inside the expression trees.
func (w *wireAllocWalker) checkExprs(list []ast.Expr) {
	for _, e := range list {
		w.checkExpr(e)
	}
}

func (w *wireAllocWalker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
			return true
		}
		for _, arg := range call.Args[1:] {
			if v, pos := w.firstTaintedIdent(arg); v != nil {
				w.pass.Reportf(pos, "make sized by %q, an unvalidated integer decoded from wire bytes; bounds-check it against the remaining payload or a protocol limit first", v.Name())
				break
			}
		}
		return true
	})
}

// checkLoopBound flags for-loops whose condition is bounded by an
// unvalidated wire integer when the body grows a slice with append —
// the loop shape of "read count, append count entries".
func (w *wireAllocWalker) checkLoopBound(s *ast.ForStmt) {
	be, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.LSS && be.Op != token.LEQ) {
		return
	}
	v, pos := w.firstTaintedIdent(be.Y)
	if v == nil {
		if v, pos = w.firstTaintedIdent(be.X); v == nil {
			return
		}
	}
	grows := false
	ast.Inspect(s.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					grows = true
					return false
				}
			}
		}
		return true
	})
	if grows {
		w.pass.Reportf(pos, "append loop bounded by %q, an unvalidated integer decoded from wire bytes; bounds-check it against the remaining payload or a protocol limit first", v.Name())
	}
}

// firstTaintedIdent returns the first identifier in e that is tainted
// at its use position.
func (w *wireAllocWalker) firstTaintedIdent(e ast.Expr) (*types.Var, token.Pos) {
	var found *types.Var
	var pos token.Pos
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v := w.objOf(id); v != nil && w.state[v].taintedAt(id.Pos()) {
				found, pos = v, id.Pos()
				return false
			}
		}
		return true
	})
	return found, pos
}

// taintedExpr reports whether e produces a wire-controlled integer:
// binary reads, read* helper calls, indexing into a byte slice, and
// arithmetic or conversions over any of those.
func (w *wireAllocWalker) taintedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		v := w.objOf(e)
		return v != nil && w.state[v].taintedAt(e.Pos())
	case *ast.ParenExpr:
		return w.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return w.taintedExpr(e.X)
	case *ast.BinaryExpr:
		return w.taintedExpr(e.X) || w.taintedExpr(e.Y)
	case *ast.IndexExpr:
		if isByteSlice(w.pass.TypesInfo, e.X) {
			return true
		}
		return w.taintedExpr(e.X)
	case *ast.CallExpr:
		// Conversions pass taint through: int(n), uint64(blob[1]).
		if tv, ok := w.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return w.taintedExpr(e.Args[0])
		}
		return w.isWireRead(e)
	}
	return false
}

// isWireRead reports whether call decodes an integer from wire bytes:
// the binary.ByteOrder fixed-width reads, binary varint readers, or a
// local read* helper returning an integer.
func (w *wireAllocWalker) isWireRead(call *ast.CallExpr) bool {
	sel, _ := call.Fun.(*ast.SelectorExpr)
	var obj types.Object
	if sel != nil {
		obj = usedObject(w.pass.TypesInfo, sel.Sel)
	} else if id, ok := call.Fun.(*ast.Ident); ok {
		obj = usedObject(w.pass.TypesInfo, id)
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
		switch fn.Name() {
		case "Uint16", "Uint32", "Uint64", "ReadUvarint", "ReadVarint":
			return true
		}
	}
	if !readHelperName.MatchString(fn.Name()) {
		return false
	}
	// A read helper taints only integer results (readString does not).
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isInteger(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func (w *wireAllocWalker) objOf(id *ast.Ident) *types.Var {
	if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	return nil
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteSlice(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
