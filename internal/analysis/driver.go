package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the standalone
// driver needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// RunStandalone loads the packages matching patterns (relative to dir,
// or the working directory when dir is empty), type-checks the
// in-module ones from source against build-cache export data
// (`go list -export -deps`), runs the analyzers, and prints surviving
// diagnostics to out. It returns the number printed.
//
// Only non-test files are loaded in this mode; the unitchecker path
// (`go vet -vettool=securetf-vet`) covers test compilation units too.
func RunStandalone(dir string, patterns []string, analyzers []*Analyzer, out io.Writer) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return 0, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		pkg := new(listPackage)
		if err := dec.Decode(pkg); err != nil {
			return 0, fmt.Errorf("decoding go list output: %v", err)
		}
		if pkg.Error != nil {
			return 0, fmt.Errorf("loading %s: %s", pkg.ImportPath, pkg.Error.Err)
		}
		if pkg.Export != "" {
			exports[pkg.ImportPath] = pkg.Export
		}
		if !pkg.DepOnly && !pkg.Standard && pkg.Module != nil && len(pkg.GoFiles) > 0 {
			targets = append(targets, pkg)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	total := 0
	for _, pkg := range targets {
		if len(pkg.CgoFiles) > 0 {
			fmt.Fprintf(out, "%s: skipped (cgo package)\n", pkg.ImportPath)
			continue
		}
		var files []*ast.File
		for _, name := range pkg.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(pkg.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return total, err
			}
			files = append(files, f)
		}
		goVersion := pkg.Module.GoVersion
		if goVersion != "" && !strings.HasPrefix(goVersion, "go") {
			goVersion = "go" + goVersion
		}
		conf := &types.Config{Importer: imp, GoVersion: goVersion}
		info := newTypesInfo()
		typed, err := conf.Check(pkg.ImportPath, fset, files, info)
		if err != nil {
			return total, fmt.Errorf("type-checking %s: %v", pkg.ImportPath, err)
		}
		diags, err := RunPackage(fset, files, typed, info, pkg.Module.Path, analyzers)
		if err != nil {
			return total, err
		}
		for _, d := range diags {
			fmt.Fprintf(out, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		total += len(diags)
	}
	return total, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
