package analysis_test

import (
	"strings"
	"testing"

	"github.com/securetf/securetf/internal/analysis"
)

// TestModuleVetClean runs the full suite over the whole module, the
// same pass CI makes: every invariant violation must be fixed or carry
// a reviewed //securetf:allow suppression, so the count is zero.
func TestModuleVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis needs a populated build cache; skipped in -short")
	}
	var buf strings.Builder
	n, err := analysis.RunStandalone("../..", []string{"./..."}, analysis.All(), &buf)
	if err != nil {
		t.Fatalf("standalone run over the module: %v", err)
	}
	if n != 0 {
		t.Fatalf("module is not vet-clean: %d unsuppressed diagnostics\n%s", n, buf.String())
	}
}
