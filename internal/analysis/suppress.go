package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the suppression directive shared by all analyzers:
//
//	//securetf:allow <analyzer> <reason>
//
// It suppresses diagnostics of the named analyzer on its own line and
// on the line immediately below (so it works both as a trailing
// comment and as a comment above the offending statement).
const allowPrefix = "//securetf:allow"

type directive struct {
	file     string
	line     int
	analyzer string
}

type directiveSet struct {
	allows    []directive
	malformed []Diagnostic
}

// collectDirectives scans every comment in the files for
// //securetf:allow directives. A directive must name a known analyzer
// and give a non-empty reason; anything else becomes a diagnostic
// (attributed to the pseudo-analyzer "allow") so a typo cannot
// silently fail open.
func collectDirectives(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) *directiveSet {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ds := &directiveSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// Some other //securetf:allowfoo pragma; not ours.
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				switch {
				case len(fields) == 0:
					ds.malformed = append(ds.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "allow",
						Message:  "malformed //securetf:allow directive: missing analyzer name and reason",
					})
				case !known[fields[0]] && fields[0] != "allow":
					ds.malformed = append(ds.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "allow",
						Message:  fmt.Sprintf("//securetf:allow names unknown analyzer %q", fields[0]),
					})
				case len(fields) < 2:
					ds.malformed = append(ds.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "allow",
						Message:  fmt.Sprintf("//securetf:allow %s needs a reason: a suppression is a reviewed claim and the claim must be stated", fields[0]),
					})
				default:
					ds.allows = append(ds.allows, directive{
						file:     pos.Filename,
						line:     pos.Line,
						analyzer: fields[0],
					})
				}
			}
		}
	}
	return ds
}

// suppresses reports whether a well-formed directive covers a
// diagnostic from the named analyzer at position.
func (ds *directiveSet) suppresses(analyzer string, position token.Position) bool {
	for _, d := range ds.allows {
		if d.analyzer != analyzer || d.file != position.Filename {
			continue
		}
		if d.line == position.Line || d.line == position.Line-1 {
			return true
		}
	}
	return false
}
