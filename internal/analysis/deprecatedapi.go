package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// rootDeprecatedSymbols are the root facade's deprecated aliases,
// flagged wherever the root package is imported. Export data carries
// no doc comments, so cross-package deprecation cannot be recovered
// from type information alone; this table pins the known set (the one
// the retired CI grep used to police) while the doc-comment scan below
// catches same-package uses of anything newly deprecated.
var rootDeprecatedSymbols = map[string]string{
	"ServeInference":   "use ServeModels with an explicit register",
	"DialInference":    "use DialModelServer (or DialRouter for a fleet)",
	"InferenceService": "use ModelServer via ServeModels",
	"InferenceClient":  "use ModelClient via DialModelServer",
}

// DeprecatedAPI reports uses of symbols marked "Deprecated:" in module
// code. It replaces the grep-based CI step with a type-resolved check:
// a mention in a comment or a string no longer trips it, and a use
// through an alias no longer evades it. Uses inside the declaring
// file, and in serve.go/doc.go (the compatibility shim and the
// migration notes), are allowed. Unlike the other analyzers this one
// covers _test.go files too — tests must stay off deprecated surfaces
// so they keep compiling when the aliases are deleted.
var DeprecatedAPI = &Analyzer{
	Name:         "deprecatedapi",
	IncludeTests: true,
	Doc: `no calls to deprecated facade symbols

Symbols whose doc comment carries a "Deprecated:" notice (and the root
facade's known deprecated aliases: ServeInference, DialInference,
InferenceService, InferenceClient) must not be used in new code. The
declaring file and the serve.go/doc.go compatibility surface are
exempt.`,
	Run: runDeprecatedAPI,
}

func runDeprecatedAPI(pass *Pass) error {
	if !inModule(pass.Pkg.Path(), pass.Module) {
		return nil
	}
	// Same-package deprecations: objects declared in these files whose
	// doc comment carries a "Deprecated:" paragraph.
	local := map[types.Object]token.Pos{} // object -> declaring position
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if hasDeprecated(d.Doc) {
					if obj := pass.TypesInfo.Defs[d.Name]; obj != nil {
						local[obj] = d.Pos()
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if hasDeprecated(d.Doc) || hasDeprecated(sp.Doc) {
							if obj := pass.TypesInfo.Defs[sp.Name]; obj != nil {
								local[obj] = sp.Pos()
							}
						}
					case *ast.ValueSpec:
						if hasDeprecated(d.Doc) || hasDeprecated(sp.Doc) {
							for _, name := range sp.Names {
								if obj := pass.TypesInfo.Defs[name]; obj != nil {
									local[obj] = sp.Pos()
								}
							}
						}
					}
				}
			}
		}
	}

	rootPath := pass.Module
	if rootPath == "" {
		rootPath = pass.Pkg.Path()
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			base := fileBase(pass.Fset, id.Pos())
			if base == "serve.go" || base == "doc.go" {
				return true
			}
			if declPos, ok := local[obj]; ok {
				if samePosFile(pass.Fset, declPos, id.Pos()) {
					return true // the declaring file may use its own shims
				}
				pass.Reportf(id.Pos(), "%s is deprecated; see its Deprecated: notice for the replacement", obj.Name())
				return true
			}
			if hint, ok := rootDeprecatedSymbols[obj.Name()]; ok &&
				obj.Pkg() != nil && obj.Pkg().Path() == rootPath && obj.Parent() == obj.Pkg().Scope() {
				pass.Reportf(id.Pos(), "%s is a deprecated serving facade alias; %s", obj.Name(), hint)
			}
			return true
		})
	}
	return nil
}

func hasDeprecated(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " ")
		if strings.HasPrefix(text, "Deprecated:") {
			return true
		}
	}
	return false
}

func samePosFile(fset *token.FileSet, a, b token.Pos) bool {
	return fset.Position(a).Filename == fset.Position(b).Filename
}
