// Package analysis compiles the framework's prose invariants into
// machine-checked static analyses, in the style of
// golang.org/x/tools/go/analysis but self-contained on the standard
// library (the module is dependency-free by policy, so the x/tools
// driver cannot be vendored in).
//
// Six analyzers enforce the properties doc.go promises:
//
//   - nowallclock:     no ambient wall clock in vtime-accounted packages
//   - detrand:         no global math/rand in deterministic-trajectory code
//   - shieldedfs:      no direct os file I/O outside the FS shield
//   - blockingsyscall: no raw net conns/listeners outside the SCONE ring
//   - wirealloc:       no attacker-sized allocations in wire decoders
//   - deprecatedapi:   no calls to deprecated facade symbols
//
// A finding is suppressed by an annotated directive on the offending
// line (or the line above it):
//
//	//securetf:allow <analyzer> <reason>
//
// The reason is mandatory: a suppression is a reviewed claim that the
// site is safe, and the claim must be stated. Malformed directives
// (unknown analyzer, missing reason) are themselves diagnostics.
//
// Two drivers share the analyzers: cmd/securetf-vet runs standalone
// over package patterns (loading type information from the build cache
// via `go list -export`) and speaks the `go vet -vettool=` unitchecker
// protocol, so CI runs the suite as an ordinary vet pass.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line
	// selection flags and //securetf:allow directives.
	Name string
	// Doc is the help text; the first line is the summary.
	Doc string
	// IncludeTests keeps diagnostics in _test.go files. Most
	// invariants bind production code only (tests freely fake wall
	// clocks or raw sockets), but e.g. deprecated-API hygiene covers
	// tests too.
	IncludeTests bool
	// Run inspects one type-checked package and reports findings.
	Run func(*Pass) error
}

// A Pass is one analyzer applied to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module is the module path of the code under analysis, or "" when
	// unknown (fixtures); package scoping treats "" as in-module.
	Module string

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, attributed to the analyzer that made it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	as := []*Analyzer{
		NoWallClock,
		DetRand,
		ShieldedFS,
		BlockingSyscall,
		WireAlloc,
		DeprecatedAPI,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName resolves an analyzer from the suite, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage applies the analyzers to one type-checked package,
// drops diagnostics in _test.go files for analyzers that exclude
// tests, applies //securetf:allow suppressions, and appends a
// diagnostic for every malformed directive. The returned slice is
// sorted by position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, module string, analyzers []*Analyzer) ([]Diagnostic, error) {
	// Directives are validated against the full suite, not the enabled
	// subset: running one analyzer must not misreport another's
	// legitimate suppressions as unknown names.
	dirs := collectDirectives(fset, files, All())
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Module:    module,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range pass.diags {
			position := fset.Position(d.Pos)
			if !a.IncludeTests && strings.HasSuffix(position.Filename, "_test.go") {
				continue
			}
			if dirs.suppresses(a.Name, position) {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, dirs.malformed...)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// inScope reports whether a package path has any of the given path
// segments. Scoping is segment-based so that test fixtures (package
// path "fixture/dist") and the real tree
// ("github.com/securetf/securetf/internal/tf/dist") are classified by
// the same rule.
func inScope(pkgPath string, segments ...string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		for _, want := range segments {
			if seg == want {
				return true
			}
		}
	}
	return false
}

// inModule reports whether pkgPath belongs to the module under
// analysis. An empty module (fixtures, ad-hoc runs) counts as inside.
func inModule(pkgPath, module string) bool {
	return module == "" || pkgPath == module || strings.HasPrefix(pkgPath, module+"/")
}

// fileBase returns the basename of the file containing pos.
func fileBase(fset *token.FileSet, pos token.Pos) string {
	return path.Base(fset.Position(pos).Filename)
}

// usedObject resolves an identifier (possibly the Sel of a selector)
// to the object it uses, or nil.
func usedObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function
// pkgPath.name (methods have receivers and do not match).
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}
