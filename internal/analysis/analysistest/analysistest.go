// Package analysistest runs an analyzer over a fixture directory and
// checks its diagnostics against expectations embedded in the
// fixtures, in the style of golang.org/x/tools/go/analysis/analysistest
// but self-contained on the standard library.
//
// A fixture is a directory of .go files compiled as one package under
// a caller-chosen import path (scoping is path-based, so a fixture
// analyzed as "fixture/dist" exercises the dist rules). A line that
// should be diagnosed carries a trailing marker:
//
//	payload := make([]byte, n) // want "unvalidated integer"
//
// The marker text is a regexp matched against the diagnostic message.
// Every marker must be matched by a diagnostic on its line and vice
// versa; //securetf:allow suppressions and _wall.go-style allowlists
// are applied exactly as in the real drivers, so fixtures assert
// suppression behaviour too.
package analysistest

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/securetf/securetf/internal/analysis"
)

// Run analyzes the fixture directory as a single package with the
// given import path and asserts that the analyzer's surviving
// diagnostics exactly match the // want markers.
func Run(t *testing.T, dir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("fixture dir %s has no .go files", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}

	conf := &types.Config{Importer: stdImporter()}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}

	diags, err := analysis.RunPackage(fset, files, pkg, info, "", []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Line-comment form, or block-comment form for lines whose
				// trailing line comment is itself under test (directives).
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					if text, ok = strings.CutPrefix(c.Text, "/* want "); !ok {
						continue
					}
					text = strings.TrimSuffix(text, "*/")
				}
				pat, err := strconv.Unquote(strings.TrimSpace(text))
				if err != nil {
					t.Fatalf("%s: bad // want marker %q: %v", fset.Position(c.Pos()), text, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad // want regexp: %v", fset.Position(c.Pos()), err)
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], re)
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				if len(wants[k]) == 0 {
					delete(wants, k)
				}
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

var (
	stdImporterOnce sync.Once
	stdImp          types.Importer
)

// stdImporter type-checks standard-library imports from GOROOT source
// (the module forbids external deps, so there is no export data to
// borrow outside a `go list` run, and fixtures only import std).
// Cgo is disabled so conditional-cgo packages like net resolve to
// their pure-Go variants.
func stdImporter() types.Importer {
	stdImporterOnce.Do(func() {
		build.Default.CgoEnabled = false
		stdImp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	return stdImp
}
