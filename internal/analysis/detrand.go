package analysis

import (
	"go/ast"
)

// globalRandFuncs are the math/rand package-level functions that draw
// from the process-global source. Constructors (New, NewSource,
// NewZipf) and methods on an explicitly-seeded *rand.Rand are allowed
// — that is the required idiom.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// globalRandV2Funcs is the same surface for math/rand/v2, whose global
// functions are seeded from runtime entropy and therefore never
// reproducible.
var globalRandV2Funcs = map[string]bool{
	"Int": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "N": true,
}

// DetRand reports draws from the global math/rand source in
// deterministic-trajectory packages. Training runs, cohort sampling,
// dataset synthesis and fault schedules are all bit-reproducible at a
// fixed seed; randomness there must come from an explicitly-seeded
// *rand.Rand threaded from config, or from the seccrypto PRG.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: `no global math/rand in deterministic-trajectory code

Packages whose trajectories are pinned bit-identical at a fixed seed
(tf, dist, datasets, federated, serving, core) must not draw from the
process-global math/rand or math/rand/v2 source. Use
rand.New(rand.NewSource(seed)) with a seed threaded from config, or
the seccrypto deterministic PRG.`,
	Run: runDetRand,
}

func runDetRand(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), "tf", "dist", "datasets", "federated", "serving", "core") &&
		!(pass.Module != "" && pass.Pkg.Path() == pass.Module) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := usedObject(pass.TypesInfo, sel.Sel)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "math/rand":
				if isPkgFunc(obj, "math/rand", obj.Name()) && globalRandFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), "rand.%s draws from the global math/rand source; use an explicitly-seeded *rand.Rand (rand.New(rand.NewSource(seed))) or the seccrypto PRG so trajectories stay bit-reproducible", obj.Name())
				}
			case "math/rand/v2":
				if isPkgFunc(obj, "math/rand/v2", obj.Name()) && globalRandV2Funcs[obj.Name()] {
					pass.Reportf(sel.Pos(), "rand.%s draws from the runtime-seeded math/rand/v2 global source; use an explicitly-seeded generator so trajectories stay bit-reproducible", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}
