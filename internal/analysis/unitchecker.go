package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// UnitConfig is the JSON compilation-unit description `go vet` hands a
// -vettool binary (one *.cfg file per package). The field set mirrors
// the contract cmd/go encodes; fields this driver does not consume
// (fact files, gccgo specifics) are kept so the JSON decodes cleanly.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the single compilation unit described by cfgFile,
// printing diagnostics to out. It returns the process exit code: 0
// clean, 1 diagnostics, 2 driver failure. The fact-output file cmd/go
// expects (VetxOutput) is always written — the suite exports no facts,
// so it is empty — and VetxOnly units (dependencies analyzed only for
// facts) are satisfied by that file alone.
func RunUnit(cfgFile string, analyzers []*Analyzer, out io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(out, "securetf-vet: %v\n", err)
		return 2
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(out, "securetf-vet: cannot decode JSON config file %s: %v\n", cfgFile, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(out, "securetf-vet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if len(cfg.GoFiles) == 0 {
		fmt.Fprintf(out, "securetf-vet: package has no files: %s\n", cfg.ImportPath)
		return 2
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it
			}
			fmt.Fprintf(out, "securetf-vet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	conf := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := newTypesInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(out, "securetf-vet: %v\n", err)
		return 2
	}

	diags, err := RunPackage(fset, files, pkg, info, cfg.ModulePath, analyzers)
	if err != nil {
		fmt.Fprintf(out, "securetf-vet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(out, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
