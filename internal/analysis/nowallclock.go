package analysis

import (
	"go/ast"
	"strings"
)

// wallClockFuncs are the package time functions that read or wait on
// the ambient wall clock. Types (time.Time, time.Duration) and pure
// arithmetic (time.Unix, d.Seconds) are fine — the invariant is about
// *observing* real time, which breaks bit-reproducible vtime
// trajectories and smuggles nondeterminism into figures.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// NoWallClock reports ambient wall-clock access in vtime-accounted
// packages. All time there is charged to the per-platform virtual
// clock (internal/vtime); the handful of genuinely-wall sites —
// reconnect deadlines, accept-loop backoff, chaos-wave watchdogs that
// pace real goroutines — carry //securetf:allow nowallclock
// annotations, and files suffixed _wall.go are allowlisted wholesale
// for code whose entire purpose is wall-side pacing.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: `no ambient wall clock in vtime-accounted packages

Packages on the virtual clock (tf, dist, federated, serving, core and
the root facade) must not call time.Now, time.Sleep, time.After and
friends: vtime trajectories are bit-reproducible and every latency in
the figures is virtual. Genuinely-wall deadline sites are annotated
with "//securetf:allow nowallclock <reason>"; files named *_wall.go
are exempt.`,
	Run: runNoWallClock,
}

func runNoWallClock(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), "tf", "dist", "federated", "serving", "core") &&
		!(pass.Module != "" && pass.Pkg.Path() == pass.Module) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := usedObject(pass.TypesInfo, sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			// Package-level functions only: methods like Time.After or
			// Time.Sub are pure arithmetic over already-obtained values.
			if !isPkgFunc(obj, "time", obj.Name()) || !wallClockFuncs[obj.Name()] {
				return true
			}
			if strings.HasSuffix(fileBase(pass.Fset, sel.Pos()), "_wall.go") {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a vtime-accounted package; charge the virtual clock instead (or annotate a genuinely-wall deadline with //securetf:allow nowallclock <reason>)", obj.Name())
			return true
		})
	}
	return nil
}
