package analysis

import (
	"go/ast"
)

// shieldedFSFuncs are the package os entry points that touch the host
// filesystem. The FS shield (internal/shield/fsshield behind
// internal/fsapi) is the only sanctioned path for persistent state in
// enclave code: it provides the authenticated encryption, the
// generation counter that defeats rollback, and the vtime accounting
// the paper's storage numbers rest on. os.Stat-style metadata reads
// are deliberately not listed — they leak nothing the host does not
// already control.
var shieldedFSFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Truncate": true, "Symlink": true, "Link": true,
}

// ShieldedFS reports direct package os file I/O outside the shield's
// own implementation and the host-side binaries. Everything inside the
// enclave boundary must go through fsapi.FS so reads and writes pass
// the FS shield.
var ShieldedFS = &Analyzer{
	Name: "shieldedfs",
	Doc: `no direct os file I/O outside internal/fsapi and cmd/

Enclave code persists state only through the FS shield: take an
fsapi.FS and use it. Direct os.Open/ReadFile/WriteFile/... calls are
confined to internal/fsapi (the shield's backing store) and to the
host-side cmd/ and examples/ binaries that bootstrap containers.`,
	Run: runShieldedFS,
}

func runShieldedFS(pass *Pass) error {
	// fsapi is the shield's backing store; cmd/ and examples/ are
	// host-side binaries; internal/analysis is build tooling that reads
	// compiler artifacts, not enclave state.
	if inScope(pass.Pkg.Path(), "fsapi", "cmd", "examples", "analysis") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := usedObject(pass.TypesInfo, sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
				return true
			}
			if !isPkgFunc(obj, "os", obj.Name()) || !shieldedFSFuncs[obj.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "os.%s bypasses the FS shield; enclave code must do persistent I/O through fsapi.FS (internal/fsapi)", obj.Name())
			return true
		})
	}
	return nil
}
