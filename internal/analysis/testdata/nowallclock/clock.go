// Package dist is a nowallclock fixture: a vtime-accounted package
// (path segment "dist") that reads the ambient wall clock.
package dist

import "time"

// Step mimics a training step that leaks wall time into a trajectory.
func Step(epoch time.Time) time.Duration {
	start := time.Now()                      // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)             // want "time.Sleep reads the wall clock"
	tick := time.NewTicker(time.Millisecond) // want "time.NewTicker reads the wall clock"
	tick.Stop()
	return start.Sub(epoch) // methods on time.Time are pure arithmetic: clean
}

// Watchdog is a genuinely-wall deadline, suppressed with a reviewed claim.
func Watchdog() time.Time {
	//securetf:allow nowallclock reconnect deadline paces a real peer, not the trajectory
	return time.Now().Add(time.Second)
}
