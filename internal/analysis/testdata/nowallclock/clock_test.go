package dist

import "time"

// Tests fake or measure wall time freely; nowallclock does not set
// IncludeTests, so this file produces no findings.
func waitInTest() {
	time.Sleep(time.Millisecond)
	_ = time.Now()
}
