package dist

import "time"

// Throttle lives in a _wall.go file: wall-side pacing is its whole
// job, so the file is allowlisted wholesale.
func Throttle() {
	time.Sleep(time.Millisecond)
}
