// Package tf is a detrand fixture: deterministic-trajectory code that
// must not draw from the global math/rand sources.
package tf

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// InitWeights draws from the process-global source: irreproducible.
func InitWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = rand.NormFloat64() // want "global math/rand source"
	}
	rand.Shuffle(len(w), func(i, j int) { w[i], w[j] = w[j], w[i] }) // want "global math/rand source"
	w[0] += float64(randv2.IntN(10))                                 // want "runtime-seeded math/rand/v2"
	return w
}

// SeededWeights is the required idiom: a generator seeded from config.
func SeededWeights(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors are the fix, not a finding
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

// JitterPort picks a debug port; the draw never touches a trajectory,
// so the site is reviewed and suppressed.
func JitterPort() int {
	return 49152 + rand.Intn(1024) //securetf:allow detrand debug port choice is outside every pinned trajectory
}
