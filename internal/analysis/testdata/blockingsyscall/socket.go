// Package serving is a blockingsyscall fixture: SCONE-hosted code
// minting raw conns and blocking on them outside the runtime wrappers.
package serving

import (
	"crypto/tls"
	"net"
)

// Serve accepts on a raw listener: the mint, the accept and the read
// all block outside Runtime.BlockingSyscall.
func Serve() error {
	ln, err := net.Listen("tcp", ":0") // want "net.Listen mints a raw conn/listener"
	if err != nil {
		return err
	}
	conn, err := ln.Accept() // want "Accept on a raw net.Listener"
	if err != nil {
		return err
	}
	buf := make([]byte, 64)
	_, err = conn.Read(buf) // want "Read on a raw net.Conn"
	return err
}

// DialUpstream mints a raw TLS client conn.
func DialUpstream(addr string, cfg *tls.Config) (*tls.Conn, error) {
	return tls.Dial("tcp", addr, cfg) // want "tls.Dial mints a raw conn/listener"
}

// AcceptWrapped's listener was wrapped by Container.Listen upstream,
// so its Accept is already routed through the runtime.
func AcceptWrapped(ln net.Listener) (net.Conn, error) {
	//securetf:allow blockingsyscall ln comes from Container.Listen, whose wrapper routes Accept through Runtime.BlockingSyscall
	return ln.Accept()
}
