// Package host sits under a cmd/ path segment: host-side tooling where
// every analyzer either scopes out or allowlists the package, so the
// whole suite must stay silent.
package host

import (
	"math/rand"
	"os"
	"time"
)

// Snapshot does everything the enclave packages may not.
func Snapshot() (time.Time, int, []byte) {
	b, _ := os.ReadFile("/etc/hostname")
	return time.Now(), rand.Intn(10), b
}
