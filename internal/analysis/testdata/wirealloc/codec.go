// Package codec is a wirealloc fixture: decoders that size allocations
// from attacker-controlled frame bytes.
package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
)

// DecodeNaive honours the frame's length hint without checking it: a
// 4-byte header can demand gigabytes.
func DecodeNaive(frame []byte) []byte {
	n := binary.LittleEndian.Uint32(frame)
	return make([]byte, n) // want "make sized by \"n\""
}

// DecodeChecked is the required shape: the hint is compared against
// the remaining payload before it sizes anything.
func DecodeChecked(frame []byte) ([]byte, error) {
	n := binary.LittleEndian.Uint32(frame)
	if int(n) > len(frame)-4 {
		return nil, errors.New("corrupt frame")
	}
	return make([]byte, n), nil
}

// DecodeEntries grows a slice in a loop bounded by an unchecked count
// read off the wire.
func DecodeEntries(r *bytes.Reader) ([]uint64, error) {
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for i := uint64(0); i < count; i++ { // want "append loop bounded by \"count\""
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// DecodeHeader sizes from a header byte plus framing; the hint is
// bounded by 257, so the site is reviewed and suppressed.
func DecodeHeader(frame []byte) []byte {
	n := int(frame[0]) + 2
	//securetf:allow wirealloc n is one header byte plus framing, bounded by 257
	return make([]byte, n)
}
