// Package enclave is a shieldedfs fixture: enclave code doing direct
// os file I/O instead of going through fsapi.FS.
package enclave

import "os"

// Persist writes model state straight to the host filesystem.
func Persist(path string, blob []byte) error {
	if err := os.WriteFile(path, blob, 0o600); err != nil { // want "os.WriteFile bypasses the FS shield"
		return err
	}
	f, err := os.Open(path) // want "os.Open bypasses the FS shield"
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := os.Stat(path); err != nil { // metadata reads are allowed
		return err
	}
	//securetf:allow shieldedfs bootstrap manifest is read before the shield mounts
	_, err = os.ReadFile(path)
	return err
}
