// Package allowfix exercises the directive parser: malformed
// suppressions must fail closed, as diagnostics, never silently.
package allowfix

import "time"

// Directive defects: unknown analyzer, missing reason, empty.
func bad() {
	_ = 0 /* want "unknown analyzer" */      //securetf:allow frobnicate whatever
	_ = 1 /* want "needs a reason" */        //securetf:allow nowallclock
	_ = 2 /* want "missing analyzer name" */ //securetf:allow
}

// A malformed directive also fails to suppress: the finding survives
// alongside the directive's own diagnostic.
func survives() {
	_ = 3                        /* want "unknown analyzer" */ //securetf:allow frobnicate wall pacing
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}
