// Package securetf is a deprecatedapi fixture mirroring the root
// facade: serve.go declares the compatibility shims and is exempt.
package securetf

// ServeInference is the retired serving entry point.
//
// Deprecated: use ServeModels with an explicit register.
func ServeInference(addr string) error {
	return serveModels(addr) // the compat file may use anything
}

// DialInference is the retired client constructor; it carries no local
// notice here, so only the pinned facade-alias table catches it.
func DialInference(addr string) error {
	_ = addr
	return nil
}

// Retired is a locally-deprecated helper.
//
// Deprecated: use Current.
func Retired() int { return 0 }

// Current replaces Retired.
func Current() int { return 1 }

func serveModels(addr string) error {
	_ = addr
	return nil
}
