package securetf

// deprecatedapi sets IncludeTests: tests must come off deprecated
// surfaces too, or they break when the aliases are deleted.
func useInTest() int {
	return Retired() // want "Retired is deprecated"
}
