package securetf

// Boot still calls the deprecated surfaces from new code.
func Boot() error {
	n := Retired() // want "Retired is deprecated"
	_ = n
	if err := ServeInference(":0"); err != nil { // want "ServeInference is deprecated"
		return err
	}
	return DialInference(":0") // want "deprecated serving facade alias"
}

// Migrated uses the replacements: clean.
func Migrated() int { return Current() }
