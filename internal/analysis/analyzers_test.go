package analysis_test

import (
	"testing"

	"github.com/securetf/securetf/internal/analysis"
	"github.com/securetf/securetf/internal/analysis/analysistest"
)

// Each fixture is typechecked under a package path chosen to land in
// (or out of) the analyzer's scope; // want markers pin the expected
// findings, and //securetf:allow sites in the fixtures double as
// suppression coverage.

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, "testdata/nowallclock", "fixture/dist", analysis.NoWallClock)
}

func TestDetRand(t *testing.T) {
	analysistest.Run(t, "testdata/detrand", "fixture/tf", analysis.DetRand)
}

func TestShieldedFS(t *testing.T) {
	analysistest.Run(t, "testdata/shieldedfs", "fixture/serving/checkpoint", analysis.ShieldedFS)
}

func TestBlockingSyscall(t *testing.T) {
	analysistest.Run(t, "testdata/blockingsyscall", "fixture/serving", analysis.BlockingSyscall)
}

func TestWireAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/wirealloc", "fixture/dist/codec", analysis.WireAlloc)
}

func TestDeprecatedAPI(t *testing.T) {
	analysistest.Run(t, "testdata/deprecatedapi", "fixture/root", analysis.DeprecatedAPI)
}

// TestAllowDirectives runs an analyzer over the malformed-directive
// fixture: bad directives surface as "allow" diagnostics and fail to
// suppress the findings next to them.
func TestAllowDirectives(t *testing.T) {
	analysistest.Run(t, "testdata/allow", "fixture/dist", analysis.NoWallClock)
}

// TestOutOfScope sweeps the whole suite over a host-side package (cmd/
// path segment) doing everything enclave code may not; no analyzer may
// report anything.
func TestOutOfScope(t *testing.T) {
	for _, a := range analysis.All() {
		t.Run(a.Name, func(t *testing.T) {
			analysistest.Run(t, "testdata/outofscope", "fixture/cmd/host", a)
		})
	}
}

func TestByName(t *testing.T) {
	for _, a := range analysis.All() {
		if analysis.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if analysis.ByName("frobnicate") != nil {
		t.Error("ByName returned an analyzer for an unknown name")
	}
}
