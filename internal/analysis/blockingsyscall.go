package analysis

import (
	"go/ast"
	"go/types"
)

// rawNetConstructors are the net/tls entry points that mint
// connections and listeners outside any runtime. A conn created here
// never passes through Runtime.Listen/Dial, so its blocking waits
// bypass the SCONE syscall ring entirely — the exact class of bug
// behind the PR 1 deadlock (a blocking read parked inside the bounded
// request ring starves every other thread's syscalls).
var rawNetConstructors = map[string]map[string]bool{
	"net": {
		"Listen": true, "ListenTCP": true, "ListenPacket": true,
		"Dial": true, "DialTimeout": true, "DialTCP": true,
		"FileConn": true, "FileListener": true,
	},
	"crypto/tls": {
		"Listen": true, "Dial": true, "DialWithDialer": true,
	},
}

// BlockingSyscall reports raw network use in SCONE-hosted packages.
// Conns and listeners there are minted by Container.Listen/Dial, which
// wrap them so Read and Accept park on the network poller via
// Runtime.BlockingSyscall instead of holding a slot in the bounded
// syscall ring. Creating raw conns, or calling Read/Accept on a value
// statically typed as a raw net conn/listener, sidesteps that
// guarantee. Accept loops over injected (already-wrapped) listeners
// are annotated at the site.
var BlockingSyscall = &Analyzer{
	Name: "blockingsyscall",
	Doc: `no raw blocking socket calls outside the SCONE ring wrappers

SCONE-hosted packages (tf, dist, federated, serving, core) must obtain
conns and listeners from Container.Listen/Dial — the runtime wrappers
route blocking waits through Runtime.BlockingSyscall. Direct
net.Listen/net.Dial/tls.Dial calls, and Read/Accept on values typed as
net.Conn/net.Listener, are flagged; sites operating on listeners the
container already wrapped carry //securetf:allow blockingsyscall
annotations. The wrapper homes (internal/scone, graphene, nativert,
shield) and the host-side CAS are out of scope.`,
	Run: runBlockingSyscall,
}

func runBlockingSyscall(pass *Pass) error {
	if !inScope(pass.Pkg.Path(), "tf", "dist", "federated", "serving", "core") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := usedObject(pass.TypesInfo, sel.Sel)
			if obj == nil {
				return true
			}
			// Raw constructors: package-level net/tls functions.
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
				if set, ok := rawNetConstructors[fn.Pkg().Path()]; ok && set[fn.Name()] && isPkgFunc(obj, fn.Pkg().Path(), fn.Name()) {
					pass.Reportf(call.Pos(), "%s.%s mints a raw conn/listener that bypasses the SCONE syscall ring; use Container.Listen/Dial (or the Runtime equivalents) so blocking waits go through Runtime.BlockingSyscall", pathTail(fn.Pkg().Path()), fn.Name())
					return true
				}
			}
			// Blocking methods on values statically typed as raw net
			// conns/listeners.
			if obj.Name() != "Read" && obj.Name() != "Accept" {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sel.X]
			if !ok || !isRawNetType(tv.Type) {
				return true
			}
			pass.Reportf(call.Pos(), "%s on a raw %s parks a blocking syscall outside Runtime.BlockingSyscall (the PR 1 deadlock class); go through the runtime wrappers, or annotate a container-wrapped value with //securetf:allow blockingsyscall <reason>", obj.Name(), types.TypeString(tv.Type, nil))
			return true
		})
	}
	return nil
}

// isRawNetType reports whether t is one of the raw network types whose
// Read/Accept block: the net.Conn and net.Listener interfaces and the
// concrete TCP/TLS conn types.
func isRawNetType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "net":
		switch obj.Name() {
		case "Conn", "Listener", "TCPConn", "TCPListener", "UnixConn", "UnixListener":
			return true
		}
	case "crypto/tls":
		return obj.Name() == "Conn"
	}
	return false
}

func pathTail(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
