package fsapi

import (
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// Mem is an in-memory FS for tests and for the CAS encrypted store's
// backing buffer. It is safe for concurrent use at the FS level; a single
// File handle must not be used concurrently, matching os.File semantics.
type Mem struct {
	mu    sync.Mutex
	files map[string][]byte
}

var _ FS = (*Mem)(nil)

// NewMem creates an empty in-memory file system.
func NewMem() *Mem {
	return &Mem{files: make(map[string][]byte)}
}

func memClean(name string) string {
	return strings.TrimPrefix(path.Clean("/"+name), "/")
}

// Open implements FS.
func (m *Mem) Open(name string) (File, error) {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return nil, fmt.Errorf("fsapi: open %q: %w", name, ErrNotExist)
	}
	return &memFile{fs: m, name: name}, nil
}

// Create implements FS.
func (m *Mem) Create(name string) (File, error) {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = nil
	return &memFile{fs: m, name: name}, nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("fsapi: remove %q: %w", name, ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *Mem) Rename(oldName, newName string) error {
	oldName, newName = memClean(oldName), memClean(newName)
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldName]
	if !ok {
		return fmt.Errorf("fsapi: rename %q: %w", oldName, ErrNotExist)
	}
	delete(m.files, oldName)
	m.files[newName] = data
	return nil
}

// Stat implements FS.
func (m *Mem) Stat(name string) (FileInfo, error) {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("fsapi: stat %q: %w", name, ErrNotExist)
	}
	return FileInfo{Name: name, Size: int64(len(data))}, nil
}

// List implements FS.
func (m *Mem) List(dir string) ([]string, error) {
	dir = memClean(dir)
	prefix := dir
	if prefix != "" {
		prefix += "/"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) {
			rest := strings.TrimPrefix(name, prefix)
			if !strings.Contains(rest, "/") {
				names = append(names, rest)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS. Directories are implicit in Mem.
func (m *Mem) MkdirAll(string) error { return nil }

type memFile struct {
	fs   *Mem
	name string
	off  int64
}

var _ File = (*memFile)(nil)

func (f *memFile) data() []byte {
	return f.fs.files[f.name]
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	data := f.data()
	if f.off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	data := f.data()
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.writeAtLocked(p, f.off)
	f.off += int64(len(p))
	return len(p), nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.writeAtLocked(p, off)
	return len(p), nil
}

func (f *memFile) writeAtLocked(p []byte, off int64) {
	data := f.data()
	need := off + int64(len(p))
	if need > int64(len(data)) {
		grown := make([]byte, need)
		copy(grown, data)
		data = grown
	}
	copy(data[off:], p)
	f.fs.files[f.name] = data
}

func (f *memFile) Seek(off int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		base = int64(len(f.data()))
	default:
		return 0, fmt.Errorf("fsapi: invalid whence %d", whence)
	}
	if base+off < 0 {
		return 0, fmt.Errorf("fsapi: negative seek")
	}
	f.off = base + off
	return f.off, nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	data := f.data()
	switch {
	case size < int64(len(data)):
		f.fs.files[f.name] = data[:size]
	case size > int64(len(data)):
		grown := make([]byte, size)
		copy(grown, data)
		f.fs.files[f.name] = grown
	}
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.data())), nil
}

func (f *memFile) Close() error { return nil }

func (f *memFile) Name() string { return f.name }
