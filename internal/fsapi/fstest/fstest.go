// Package fstest provides a conformance suite for fsapi.FS
// implementations: the runtimes' syscall-interposed views, the
// file-system shield and the plain backends must all behave like the
// same file system to the application (the paper's transparency goal).
package fstest

import (
	"bytes"
	"errors"
	"io"
	"sort"
	"testing"

	"github.com/securetf/securetf/internal/fsapi"
)

// Conformance exercises the full fsapi surface against fsys. The file
// system must be empty when passed in.
func Conformance(t *testing.T, fsys fsapi.FS) {
	t.Helper()
	conformCreateOpen(t, fsys)
	conformRandomAccess(t, fsys)
	conformTruncate(t, fsys)
	conformRemoveRename(t, fsys)
	conformStatList(t, fsys)
	conformErrors(t, fsys)
}

func conformCreateOpen(t *testing.T, fsys fsapi.FS) {
	t.Helper()
	f, err := fsys.Create("dir/a.bin")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if f.Name() != "dir/a.bin" {
		t.Fatalf("name = %q", f.Name())
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	g, err := fsys.Open("dir/a.bin")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer g.Close()
	data, err := io.ReadAll(g)
	if err != nil {
		t.Fatalf("read all: %v", err)
	}
	if string(data) != "hello world" {
		t.Fatalf("content %q", data)
	}
	size, err := g.Size()
	if err != nil || size != 11 {
		t.Fatalf("size = %d, %v", size, err)
	}

	// Create truncates an existing file.
	h, err := fsys.Create("dir/a.bin")
	if err != nil {
		t.Fatalf("re-create: %v", err)
	}
	if _, err := h.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	h.Close()
	got, err := fsapi.ReadFile(fsys, "dir/a.bin")
	if err != nil || string(got) != "x" {
		t.Fatalf("after re-create: %q, %v", got, err)
	}
}

func conformRandomAccess(t *testing.T, fsys fsapi.FS) {
	t.Helper()
	f, err := fsys.Create("rand.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("abcdefgh"), 0); err != nil {
		t.Fatalf("write at 0: %v", err)
	}
	if _, err := f.WriteAt([]byte("ZZ"), 3); err != nil {
		t.Fatalf("write at 3: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 2); err != nil {
		t.Fatalf("read at 2: %v", err)
	}
	if string(buf) != "cZZf" {
		t.Fatalf("read at = %q", buf)
	}
	// Seek + sequential read agree with ReadAt.
	if _, err := f.Seek(2, io.SeekStart); err != nil {
		t.Fatalf("seek: %v", err)
	}
	buf2 := make([]byte, 4)
	if _, err := io.ReadFull(f, buf2); err != nil {
		t.Fatalf("read after seek: %v", err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatalf("seek-read %q != readat %q", buf2, buf)
	}
}

func conformTruncate(t *testing.T, fsys fsapi.FS) {
	t.Helper()
	f, err := fsys.Create("trunc.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatalf("truncate shrink: %v", err)
	}
	if size, _ := f.Size(); size != 4 {
		t.Fatalf("size after shrink = %d", size)
	}
	if err := f.Truncate(8); err != nil {
		t.Fatalf("truncate grow: %v", err)
	}
	buf := make([]byte, 8)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after grow: %v", err)
	}
	if string(buf[:4]) != "0123" || !bytes.Equal(buf[4:], make([]byte, 4)) {
		t.Fatalf("grown content %q", buf)
	}
}

func conformRemoveRename(t *testing.T, fsys fsapi.FS) {
	t.Helper()
	if err := fsapi.WriteFile(fsys, "old.bin", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename("old.bin", "new.bin"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := fsys.Stat("old.bin"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat old after rename: %v", err)
	}
	got, err := fsapi.ReadFile(fsys, "new.bin")
	if err != nil || string(got) != "payload" {
		t.Fatalf("read renamed: %q, %v", got, err)
	}
	if err := fsys.Remove("new.bin"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := fsys.Stat("new.bin"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat after remove: %v", err)
	}
}

func conformStatList(t *testing.T, fsys fsapi.FS) {
	t.Helper()
	if err := fsys.MkdirAll("lst/sub"); err != nil {
		t.Fatalf("mkdirall: %v", err)
	}
	for _, name := range []string{"lst/b.bin", "lst/a.bin"} {
		if err := fsapi.WriteFile(fsys, name, []byte("z")); err != nil {
			t.Fatal(err)
		}
	}
	info, err := fsys.Stat("lst/a.bin")
	if err != nil || info.Size != 1 {
		t.Fatalf("stat: %+v, %v", info, err)
	}
	names, err := fsys.List("lst")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	sort.Strings(names)
	for _, want := range []string{"a.bin", "b.bin"} {
		found := false
		for _, n := range names {
			if n == want || n == "lst/"+want {
				found = true
			}
		}
		if !found {
			t.Fatalf("list missing %s: %v", want, names)
		}
	}
}

func conformErrors(t *testing.T, fsys fsapi.FS) {
	t.Helper()
	if _, err := fsys.Open("does/not/exist"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if _, err := fsys.Stat("does/not/exist"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat missing: %v", err)
	}
	if err := fsys.Remove("does/not/exist"); err == nil {
		t.Fatal("remove missing succeeded")
	}
}
