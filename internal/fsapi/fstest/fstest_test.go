package fstest

import (
	"testing"

	"github.com/securetf/securetf/internal/fsapi"
)

func TestMemConformance(t *testing.T) {
	Conformance(t, fsapi.NewMem())
}

func TestOSConformance(t *testing.T) {
	Conformance(t, fsapi.NewOS(t.TempDir()))
}
