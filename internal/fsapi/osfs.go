package fsapi

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// OS is an FS rooted at a host directory. All names are interpreted
// relative to the root; escaping the root with ".." is rejected.
type OS struct {
	root string
}

var _ FS = (*OS)(nil)

// NewOS creates an OS file system rooted at dir.
func NewOS(dir string) *OS {
	return &OS{root: dir}
}

func (o *OS) resolve(name string) (string, error) {
	clean := filepath.Clean("/" + name)
	if strings.Contains(clean, "..") {
		return "", fmt.Errorf("fsapi: path %q escapes root", name)
	}
	return filepath.Join(o.root, clean), nil
}

// Open implements FS.
func (o *OS) Open(name string) (File, error) {
	p, err := o.resolve(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_RDWR, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("fsapi: open %q: %w", name, ErrNotExist)
		}
		return nil, fmt.Errorf("fsapi: open %q: %w", name, err)
	}
	return &osFile{f: f, name: name}, nil
}

// Create implements FS.
func (o *OS) Create(name string) (File, error) {
	p, err := o.resolve(name)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("fsapi: create %q: %w", name, err)
	}
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fsapi: create %q: %w", name, err)
	}
	return &osFile{f: f, name: name}, nil
}

// Remove implements FS.
func (o *OS) Remove(name string) error {
	p, err := o.resolve(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("fsapi: remove %q: %w", name, ErrNotExist)
		}
		return fmt.Errorf("fsapi: remove %q: %w", name, err)
	}
	return nil
}

// Rename implements FS.
func (o *OS) Rename(oldName, newName string) error {
	po, err := o.resolve(oldName)
	if err != nil {
		return err
	}
	pn, err := o.resolve(newName)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(pn), 0o755); err != nil {
		return fmt.Errorf("fsapi: rename %q: %w", newName, err)
	}
	if err := os.Rename(po, pn); err != nil {
		return fmt.Errorf("fsapi: rename %q -> %q: %w", oldName, newName, err)
	}
	return nil
}

// Stat implements FS.
func (o *OS) Stat(name string) (FileInfo, error) {
	p, err := o.resolve(name)
	if err != nil {
		return FileInfo{}, err
	}
	st, err := os.Stat(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return FileInfo{}, fmt.Errorf("fsapi: stat %q: %w", name, ErrNotExist)
		}
		return FileInfo{}, fmt.Errorf("fsapi: stat %q: %w", name, err)
	}
	return FileInfo{Name: name, Size: st.Size()}, nil
}

// List implements FS.
func (o *OS) List(dir string) ([]string, error) {
	p, err := o.resolve(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("fsapi: list %q: %w", dir, ErrNotExist)
		}
		return nil, fmt.Errorf("fsapi: list %q: %w", dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// MkdirAll implements FS.
func (o *OS) MkdirAll(dir string) error {
	p, err := o.resolve(dir)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(p, 0o755); err != nil {
		return fmt.Errorf("fsapi: mkdir %q: %w", dir, err)
	}
	return nil
}

type osFile struct {
	f    *os.File
	name string
}

var _ File = (*osFile)(nil)

func (f *osFile) Read(p []byte) (int, error)                { return f.f.Read(p) }
func (f *osFile) Write(p []byte) (int, error)               { return f.f.Write(p) }
func (f *osFile) Close() error                              { return f.f.Close() }
func (f *osFile) Seek(off int64, whence int) (int64, error) { return f.f.Seek(off, whence) }
func (f *osFile) ReadAt(p []byte, off int64) (int, error)   { return f.f.ReadAt(p, off) }
func (f *osFile) WriteAt(p []byte, off int64) (int, error)  { return f.f.WriteAt(p, off) }
func (f *osFile) Truncate(size int64) error                 { return f.f.Truncate(size) }
func (f *osFile) Name() string                              { return f.name }

func (f *osFile) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
