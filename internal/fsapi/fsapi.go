// Package fsapi defines the file-system interface that secureTF shields
// and runtimes implement and wrap.
//
// The standard library's io/fs is read-only; the file-system shield needs
// writes, truncation and random access, so we define a minimal writable
// interface here. Implementations: OS (passthrough, rooted at a
// directory), Mem (in-memory, for tests), the SCONE/Graphene runtimes'
// syscall-interposed views, and the file-system shield.
package fsapi

import (
	"errors"
	"fmt"
	"io"
)

// File is an open file handle with random access.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	io.ReaderAt
	io.WriterAt
	// Truncate changes the file size.
	Truncate(size int64) error
	// Size returns the current file size.
	Size() (int64, error)
	// Name returns the path the file was opened with.
	Name() string
}

// FS is a writable file system.
type FS interface {
	// Open opens an existing file for reading and writing.
	Open(name string) (File, error)
	// Create creates (or truncates) a file for reading and writing.
	Create(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename moves a file.
	Rename(oldName, newName string) error
	// Stat returns the size of a file, or an error if it does not exist.
	Stat(name string) (FileInfo, error)
	// List returns the names of files under the given directory prefix.
	List(dir string) ([]string, error)
	// MkdirAll creates a directory and its parents.
	MkdirAll(dir string) error
}

// FileInfo describes a file.
type FileInfo struct {
	Name string
	Size int64
}

// ErrNotExist reports a missing file. Implementations wrap it so callers
// can use errors.Is.
var ErrNotExist = errors.New("fsapi: file does not exist")

// ReadFile reads the entire named file from fs.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("fsapi: stat %q: %w", name, err)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("fsapi: reading %q: %w", name, err)
	}
	return buf, nil
}

// WriteFile writes data to the named file on fs, creating it if needed.
func WriteFile(fsys FS, name string, data []byte) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("fsapi: writing %q: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fsapi: closing %q: %w", name, err)
	}
	return nil
}
