package fsapi

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

// fsFactories enumerates the FS implementations under test so every
// behaviour is verified against both.
func fsFactories(t *testing.T) map[string]func() FS {
	t.Helper()
	return map[string]func() FS{
		"os":  func() FS { return NewOS(t.TempDir()) },
		"mem": func() FS { return NewMem() },
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk()
			data := []byte("hello secure world")
			if err := WriteFile(fsys, "dir/sub/file.bin", data); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(fsys, "dir/sub/file.bin")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("got %q want %q", got, data)
			}
		})
	}
}

func TestOpenMissing(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk()
			if _, err := fsys.Open("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("err = %v, want ErrNotExist", err)
			}
			if _, err := fsys.Stat("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("stat err = %v, want ErrNotExist", err)
			}
			if err := fsys.Remove("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("remove err = %v, want ErrNotExist", err)
			}
		})
	}
}

func TestStatSize(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk()
			if err := WriteFile(fsys, "f", make([]byte, 1234)); err != nil {
				t.Fatal(err)
			}
			fi, err := fsys.Stat("f")
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size != 1234 {
				t.Fatalf("Size = %d, want 1234", fi.Size)
			}
		})
	}
}

func TestRename(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk()
			if err := WriteFile(fsys, "a", []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := fsys.Rename("a", "b/c"); err != nil {
				t.Fatal(err)
			}
			if _, err := fsys.Stat("a"); !errors.Is(err, ErrNotExist) {
				t.Fatal("old name still exists")
			}
			got, err := ReadFile(fsys, "b/c")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "x" {
				t.Fatalf("content after rename = %q", got)
			}
		})
	}
}

func TestRemove(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk()
			if err := WriteFile(fsys, "f", []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := fsys.Remove("f"); err != nil {
				t.Fatal(err)
			}
			if _, err := fsys.Stat("f"); !errors.Is(err, ErrNotExist) {
				t.Fatal("file still exists after remove")
			}
		})
	}
}

func TestList(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk()
			for _, f := range []string{"d/a", "d/b", "d/nested/c", "top"} {
				if err := WriteFile(fsys, f, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			names, err := fsys.List("d")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 2 || names[0] != "a" || names[1] != "b" {
				t.Fatalf("List(d) = %v, want [a b]", names)
			}
		})
	}
}

func TestReadAtWriteAt(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk()
			f, err := fsys.Create("f")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte("world"), 6); err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte("hello "), 0); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 5)
			if _, err := f.ReadAt(buf, 6); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(buf) != "world" {
				t.Fatalf("ReadAt = %q, want world", buf)
			}
			size, err := f.Size()
			if err != nil {
				t.Fatal(err)
			}
			if size != 11 {
				t.Fatalf("Size = %d, want 11", size)
			}
		})
	}
}

func TestSeek(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk()
			f, err := fsys.Create("f")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte("0123456789")); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Seek(4, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 2)
			if _, err := io.ReadFull(f, buf); err != nil {
				t.Fatal(err)
			}
			if string(buf) != "45" {
				t.Fatalf("after seek read %q, want 45", buf)
			}
			if pos, err := f.Seek(-2, io.SeekEnd); err != nil || pos != 8 {
				t.Fatalf("SeekEnd = %d, %v", pos, err)
			}
		})
	}
}

func TestTruncate(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk()
			if err := WriteFile(fsys, "f", []byte("0123456789")); err != nil {
				t.Fatal(err)
			}
			f, err := fsys.Open("f")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if err := f.Truncate(4); err != nil {
				t.Fatal(err)
			}
			if size, _ := f.Size(); size != 4 {
				t.Fatalf("after shrink Size = %d, want 4", size)
			}
			if err := f.Truncate(8); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			want := []byte{'0', '1', '2', '3', 0, 0, 0, 0}
			if !bytes.Equal(buf, want) {
				t.Fatalf("after grow = %v, want %v", buf, want)
			}
		})
	}
}

func TestOSRejectsEscape(t *testing.T) {
	fsys := NewOS(t.TempDir())
	// Clean("/" + name) neutralizes "..", so these must never reach the
	// parent directory; either an error or containment is acceptable, but
	// escaping is not. Verify resolution stays under the root.
	if _, err := fsys.Create("../escape"); err != nil {
		return // rejected outright: fine
	}
	if _, err := fsys.Stat("escape"); err != nil {
		t.Fatal("path with .. was not contained within the root")
	}
}

func TestMemRoundTripProperty(t *testing.T) {
	fsys := NewMem()
	f := func(name string, data []byte) bool {
		if name == "" {
			name = "x"
		}
		if err := WriteFile(fsys, name, data); err != nil {
			return false
		}
		got, err := ReadFile(fsys, name)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fsys := mk()
			if err := WriteFile(fsys, "f", []byte("long content here")); err != nil {
				t.Fatal(err)
			}
			if err := WriteFile(fsys, "f", []byte("short")); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(fsys, "f")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "short" {
				t.Fatalf("content = %q, want short", got)
			}
		})
	}
}
