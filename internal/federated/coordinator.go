package federated

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"

	"github.com/securetf/securetf/internal/seccrypto"
	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tf/dist"
	"github.com/securetf/securetf/internal/vtime"
)

// CoordinatorConfig configures a federated Coordinator.
type CoordinatorConfig struct {
	// Listener accepts client connections. Required; route it through
	// the aggregator container so the network shield's TLS applies.
	Listener net.Listener
	// Vars seeds the global model. Required, Float32 tensors; deep
	// copied at construction.
	Vars map[string]*tf.Tensor
	// Clients is the client population size N. Client ids are
	// [0, N). Required, ≥ 1.
	Clients int
	// SampleFraction is the fraction of the population sampled into
	// each round's cohort, in (0, 1]. Zero means 1 (sample everyone).
	SampleFraction float64
	// Quorum is the number of accepted uploads that completes a round,
	// in [1, cohort size]. Required. Under CodecInt8 it is additionally
	// bounded so the 16-bit ring sum cannot overflow.
	Quorum int
	// Rounds is the number of FedAvg rounds to run. Required, ≥ 1.
	Rounds int
	// ServerLR scales the averaged update applied to the globals per
	// round. Zero means 1 (plain FedAvg).
	ServerLR float64
	// Codec is the uplink quantizer every client must run.
	Codec Codec
	// Unmasked disables secure aggregation: clients upload bare
	// quantized updates and dropout needs no seed reveals. The ablation
	// arm of the sum-only property test, not a deployment mode.
	Unmasked bool
	// Seed drives the per-round client sampling and top-k patterns.
	Seed int64
	// Clock is the coordinator's virtual clock. Defaults to a fresh
	// clock.
	Clock *vtime.Clock
	// Params supplies cost-model constants. The zero value falls back
	// to sgx.DefaultParams.
	Params sgx.Params
	// Tap, when set, observes every accepted upload payload before it
	// is accumulated: one call per (client, variable) with the raw wire
	// blob. The sum-only property test uses it to pin that individual
	// payloads are mask-blinded; the coordinator itself never inspects
	// payloads beyond accumulation either way.
	Tap func(round uint64, client uint32, name string, payload []byte)
}

// Stats is a snapshot of coordinator counters.
type Stats struct {
	// Rounds is the number of committed rounds so far.
	Rounds int
	// Accepted counts accepted uploads across all rounds.
	Accepted int
	// Refusals counts uploads refused with the retryable Closed flag —
	// stragglers that missed their round's quorum.
	Refusals int
	// Reveals counts accepted seed-reveal messages.
	Reveals int
	// Handshakes counts completed client handshakes (rejoins included).
	Handshakes int
	// UplinkBytes totals the payload bytes of accepted uploads — the
	// quantity the uplink codec exists to shrink.
	UplinkBytes int64
}

// Coordinator runs FedAvg rounds with quorum-based straggler dropout
// and pairwise-masked secure aggregation over a population of simulated
// clients. Clients drive every exchange; the coordinator only ever
// answers, so its serve loop never blocks on a peer.
type Coordinator struct {
	cfg     CoordinatorConfig
	names   []string
	shapes  map[string]tf.Shape
	sampled int

	mu    sync.Mutex
	vars  map[string][]float32 // working globals, mutated only in finalize
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	// Per-round state, rebuilt by openRound. snapshot, cohort and dead
	// are immutable once published (replies reference them outside mu).
	round       uint64
	patternSeed uint64
	cohort      []uint32
	cohortSet   map[uint32]bool
	snapshot    map[string]*tf.Tensor
	coords      map[string][]int
	acc         map[string][]uint64
	received    map[uint32]bool
	closing     bool
	dead        []uint32
	revealed    map[uint32]bool

	stats  Stats
	closed bool
	done   bool
	doneCh chan struct{}
}

// NewCoordinator validates cfg, deep-copies the seed variables and
// starts accepting client connections. Training ends — Done() closes —
// after cfg.Rounds committed rounds.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Listener == nil {
		return nil, errors.New("federated: CoordinatorConfig.Listener is required")
	}
	if len(cfg.Vars) == 0 {
		return nil, errors.New("federated: CoordinatorConfig.Vars must be non-empty")
	}
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("federated: CoordinatorConfig.Clients must be ≥ 1, got %d", cfg.Clients)
	}
	if cfg.SampleFraction == 0 {
		cfg.SampleFraction = 1
	}
	if cfg.SampleFraction <= 0 || cfg.SampleFraction > 1 {
		return nil, fmt.Errorf("federated: sample fraction %v outside (0, 1]", cfg.SampleFraction)
	}
	sampled := sampleSize(cfg.Clients, cfg.SampleFraction)
	if cfg.Quorum < 1 || cfg.Quorum > sampled {
		return nil, fmt.Errorf("federated: quorum %d outside [1, %d] (cohort of %d sampled from %d clients)",
			cfg.Quorum, sampled, sampled, cfg.Clients)
	}
	if err := cfg.Codec.validate(); err != nil {
		return nil, err
	}
	if cfg.Codec.Kind == CodecInt8 && cfg.Quorum > maxInt8Quorum {
		return nil, fmt.Errorf("federated: quorum %d overflows the int8 ring sum (max %d)", cfg.Quorum, maxInt8Quorum)
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("federated: CoordinatorConfig.Rounds must be ≥ 1, got %d", cfg.Rounds)
	}
	if cfg.ServerLR == 0 {
		cfg.ServerLR = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = &vtime.Clock{}
	}
	if cfg.Params.WireBandwidth == 0 {
		cfg.Params = sgx.DefaultParams()
	}

	c := &Coordinator{
		cfg:     cfg,
		shapes:  make(map[string]tf.Shape, len(cfg.Vars)),
		sampled: sampled,
		vars:    make(map[string][]float32, len(cfg.Vars)),
		conns:   make(map[net.Conn]struct{}),
		doneCh:  make(chan struct{}),
	}
	for name, t := range cfg.Vars {
		if t == nil || t.DType() != tf.Float32 {
			return nil, fmt.Errorf("federated: variable %q must be a Float32 tensor", name)
		}
		c.names = append(c.names, name)
		c.shapes[name] = t.Shape()
		c.vars[name] = append([]float32(nil), t.Floats()...)
	}
	sort.Strings(c.names)
	c.openRoundLocked()
	c.wg.Add(1)
	go c.accept()
	return c, nil
}

// sampleSize is the cohort size for a population under a sample
// fraction: ⌈fraction·population⌉, clamped to the population.
func sampleSize(population int, fraction float64) int {
	k := int(float64(population) * fraction)
	if float64(k) < float64(population)*fraction {
		k++
	}
	if k < 1 {
		k = 1
	}
	if k > population {
		k = population
	}
	return k
}

// openRoundLocked samples the next round's cohort and resets the
// accumulator. The published snapshot, cohort and pattern are immutable
// for the round's lifetime, so assignment replies can reference them
// after mu is released.
func (c *Coordinator) openRoundLocked() {
	c.cohort = roundCohort(c.cfg.Seed, c.round, c.cfg.Clients, c.sampled)
	c.cohortSet = make(map[uint32]bool, len(c.cohort))
	for _, id := range c.cohort {
		c.cohortSet[id] = true
	}
	c.patternSeed = roundPatternSeed(c.cfg.Seed, c.round)
	c.snapshot = make(map[string]*tf.Tensor, len(c.names))
	c.coords = make(map[string][]int, len(c.names))
	c.acc = make(map[string][]uint64, len(c.names))
	for _, name := range c.names {
		t, err := tf.FromFloats(c.shapes[name], c.vars[name])
		if err != nil {
			panic(fmt.Sprintf("federated: snapshot %q: %v", name, err))
		}
		c.snapshot[name] = t
		coords := c.cfg.Codec.coords(c.patternSeed, name, len(c.vars[name]))
		c.coords[name] = coords
		c.acc[name] = make([]uint64, wordCount(coords, len(c.vars[name])))
	}
	c.received = make(map[uint32]bool, c.cfg.Quorum)
	c.closing = false
	c.dead = nil
	c.revealed = nil
}

// Vars returns a snapshot of the current global variables.
func (c *Coordinator) Vars() map[string]*tf.Tensor {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*tf.Tensor, len(c.names))
	for _, name := range c.names {
		t, err := tf.FromFloats(c.shapes[name], c.vars[name])
		if err != nil {
			panic(fmt.Sprintf("federated: snapshot %q: %v", name, err))
		}
		out[name] = t
	}
	return out
}

// Stats returns a snapshot of the coordinator counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Done is closed once cfg.Rounds rounds have been committed.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Close stops the coordinator: the listener and all client connections
// are closed.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	err := c.cfg.Listener.Close()
	c.wg.Wait()
	return err
}

func (c *Coordinator) accept() {
	defer c.wg.Done()
	for {
		//securetf:allow blockingsyscall cfg.Listener is minted by Container.Listen; its wrapper parks Accept in Runtime.BlockingSyscall
		conn, err := c.cfg.Listener.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.serve(conn)
	}
}

func (c *Coordinator) serve(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		conn.Close()
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()
	for {
		msg, err := dist.Receive(conn, c.cfg.Clock, c.cfg.Params)
		if err != nil {
			return
		}
		var resp *dist.Message
		switch msg.Kind {
		case dist.MsgHello:
			resp = c.handshake(msg)
		case dist.MsgFedPoll:
			resp = c.poll(msg)
		case dist.MsgFedPush:
			resp = c.push(msg)
		case dist.MsgFedSeeds:
			resp = c.seeds(msg)
		default:
			resp = &dist.Message{Kind: dist.MsgAck, Err: fmt.Sprintf("federated: unknown message kind %d", msg.Kind)}
		}
		if _, err := dist.Send(conn, c.cfg.Clock, c.cfg.Params, resp); err != nil {
			return
		}
	}
}

// maskedPolicy is the Policy wire byte of the federated handshake: 1
// when pairwise masking is on, 0 for the unmasked ablation. A client
// and coordinator disagreeing on it must fail fast — an unmasked
// client in a masked cohort would upload its bare update.
func maskedPolicy(unmasked bool) uint8 {
	if unmasked {
		return 0
	}
	return 1
}

// handshake answers a client's hello with the coordinator's manifest.
// The client states the population size, codec and masking mode it was
// configured with; any mismatch is reported explicitly so a
// misconfigured client fails at construction instead of poisoning a
// round (or uploading unmasked).
func (c *Coordinator) handshake(msg *dist.Message) *dist.Message {
	resp := &dist.Message{
		Kind:   dist.MsgManifest,
		Shards: uint32(c.cfg.Clients),
		Policy: maskedPolicy(c.cfg.Unmasked),
		Codec:  uint8(c.cfg.Codec.Kind),
		TopK:   c.cfg.Codec.param(),
		Names:  c.names,
		OK:     true,
	}
	clientCodec, codecErr := codecFromWire(msg.Codec, msg.TopK)
	switch {
	case int(msg.Worker) >= c.cfg.Clients:
		resp.OK = false
		resp.Err = fmt.Sprintf("federated: client id %d outside the population of %d", msg.Worker, c.cfg.Clients)
	case int(msg.Shards) != c.cfg.Clients:
		resp.OK = false
		resp.Err = fmt.Sprintf("federated: client %d expects a population of %d, this job has %d",
			msg.Worker, msg.Shards, c.cfg.Clients)
	case codecErr != nil:
		resp.OK = false
		resp.Err = fmt.Sprintf("federated: client %d: %v", msg.Worker, codecErr)
	case clientCodec != c.cfg.Codec:
		resp.OK = false
		resp.Err = fmt.Sprintf("federated: client %d uploads with codec %v, this job runs %v",
			msg.Worker, clientCodec, c.cfg.Codec)
	case msg.Policy != maskedPolicy(c.cfg.Unmasked):
		resp.OK = false
		resp.Err = fmt.Sprintf("federated: client %d masking mode %d, this job runs %d",
			msg.Worker, msg.Policy, maskedPolicy(c.cfg.Unmasked))
	}
	if resp.OK {
		c.mu.Lock()
		c.stats.Handshakes++
		c.mu.Unlock()
	}
	return resp
}

// poll answers a client's work request: a round assignment if the
// client is sampled and has not uploaded yet, an unmask request if the
// round is closing and the client owes seed reveals, a wait otherwise,
// and a terminal refusal once training is complete.
func (c *Coordinator) poll(msg *dist.Message) *dist.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := msg.Worker
	switch {
	case c.done:
		return &dist.Message{Kind: dist.MsgAck, Err: trainingCompleteErr}
	case c.closing:
		if c.received[id] && !c.revealed[id] {
			return &dist.Message{Kind: dist.MsgFedUnmask, OK: true, Round: c.round, Clients: c.dead}
		}
		return &dist.Message{Kind: dist.MsgFedRound, OK: true, Closed: true}
	case c.cohortSet[id] && !c.received[id]:
		return &dist.Message{
			Kind:    dist.MsgFedRound,
			OK:      true,
			Round:   c.round,
			Seed:    c.patternSeed,
			Clients: c.cohort,
			Vars:    c.snapshot,
		}
	default:
		return &dist.Message{Kind: dist.MsgFedRound, OK: true, Closed: true}
	}
}

// push validates and accumulates one masked upload, closing the round
// when the quorum fills. A push for a closed (or closing) round is
// refused with the retryable Closed flag — and must be: after the seed
// reveals, accepting it would let the coordinator strip its masks.
// Structural violations — a non-cohort sender, a duplicate, a
// malformed payload — are hard errors.
func (c *Coordinator) push(msg *dist.Message) *dist.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := msg.Worker
	if c.done || c.closing || msg.Round != c.round {
		c.stats.Refusals++
		return &dist.Message{
			Kind: dist.MsgAck, Closed: true,
			Err: fmt.Sprintf("federated: round %d closed at quorum", msg.Round),
		}
	}
	if !c.cohortSet[id] {
		return &dist.Message{Kind: dist.MsgAck,
			Err: fmt.Sprintf("federated: client %d is not in round %d's cohort", id, c.round)}
	}
	if c.received[id] {
		return &dist.Message{Kind: dist.MsgAck,
			Err: fmt.Sprintf("federated: client %d already uploaded in round %d", id, c.round)}
	}
	// Validate every variable before touching the accumulator, so a
	// malformed upload is rejected atomically.
	parsed := make(map[string][]uint64, len(c.names))
	var bytes int64
	for _, name := range c.names {
		blob, ok := msg.Grads[name]
		if !ok {
			return &dist.Message{Kind: dist.MsgAck,
				Err: fmt.Sprintf("federated: client %d upload is missing variable %q", id, name)}
		}
		words, err := c.cfg.Codec.parseUpdate(blob, len(c.acc[name]))
		if err != nil {
			return &dist.Message{Kind: dist.MsgAck, Err: fmt.Sprintf("client %d %q: %v", id, name, err)}
		}
		parsed[name] = words
		bytes += int64(len(blob))
	}
	if len(msg.Grads) != len(c.names) {
		return &dist.Message{Kind: dist.MsgAck,
			Err: fmt.Sprintf("federated: client %d uploaded %d variables, the model has %d",
				id, len(msg.Grads), len(c.names))}
	}
	if c.cfg.Tap != nil {
		for _, name := range c.names {
			c.cfg.Tap(c.round, id, name, msg.Grads[name])
		}
	}
	for name, words := range parsed {
		acc := c.acc[name]
		for i, w := range words {
			acc[i] += w
		}
	}
	c.received[id] = true
	c.stats.Accepted++
	c.stats.UplinkBytes += bytes
	if len(c.received) >= c.cfg.Quorum {
		c.closeRoundLocked()
	}
	return &dist.Message{Kind: dist.MsgAck, OK: true, Round: msg.Round}
}

// closeRoundLocked transitions a quorum-filled round towards commit:
// directly if every sampled client made it (or masking is off), via the
// seed-reveal phase otherwise.
func (c *Coordinator) closeRoundLocked() {
	var dead []uint32
	for _, id := range c.cohort {
		if !c.received[id] {
			dead = append(dead, id)
		}
	}
	if len(dead) == 0 || c.cfg.Unmasked {
		c.finalizeLocked()
		return
	}
	c.closing = true
	c.dead = dead
	c.revealed = make(map[uint32]bool, len(c.received))
}

// seeds processes one survivor's seed reveal for the round's dead
// clients, subtracting the masks the dead left uncancelled. The round
// commits once every accepted uploader has revealed.
func (c *Coordinator) seeds(msg *dist.Message) *dist.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := msg.Worker
	fail := func(format string, args ...any) *dist.Message {
		return &dist.Message{Kind: dist.MsgAck, Err: fmt.Sprintf(format, args...)}
	}
	switch {
	case !c.closing || msg.Round != c.round:
		return fail("federated: round %d is not collecting seed reveals", msg.Round)
	case !c.received[id]:
		return fail("federated: client %d did not upload in round %d, nothing to reveal", id, c.round)
	case c.revealed[id]:
		return fail("federated: client %d already revealed for round %d", id, c.round)
	case len(msg.Grads) != len(c.dead):
		return fail("federated: client %d revealed %d seeds, round %d has %d dead clients",
			id, len(msg.Grads), c.round, len(c.dead))
	}
	seedOf := make(map[uint32]seccrypto.Key, len(c.dead))
	for _, deadID := range c.dead {
		blob, ok := msg.Grads[strconv.FormatUint(uint64(deadID), 10)]
		if !ok {
			return fail("federated: client %d's reveal is missing dead client %d", id, deadID)
		}
		if len(blob) != seccrypto.KeySize {
			return fail("federated: client %d revealed a %d-byte seed for client %d, want %d",
				id, len(blob), deadID, seccrypto.KeySize)
		}
		var key seccrypto.Key
		copy(key[:], blob)
		seedOf[deadID] = key
	}
	for _, deadID := range c.dead {
		subtractDeadMasks(c.acc, c.names, c.cfg.Codec.width(), seedOf[deadID], id, deadID, c.round)
	}
	c.revealed[id] = true
	c.stats.Reveals++
	if len(c.revealed) == len(c.received) {
		c.finalizeLocked()
	}
	return &dist.Message{Kind: dist.MsgAck, OK: true, Round: msg.Round}
}

// finalizeLocked commits the round: the accumulated ring sum — masks
// cancelled — is decoded, averaged over the accepted uploads and
// applied to the globals, and the next round opens (or training
// completes).
func (c *Coordinator) finalizeLocked() {
	q := float64(len(c.received))
	for _, name := range c.names {
		v := c.vars[name]
		coords := c.coords[name]
		for w, word := range c.acc[name] {
			i := w
			if coords != nil {
				i = coords[w]
			}
			v[i] += float32(c.cfg.ServerLR * c.cfg.Codec.decodeSum(word) / q)
		}
	}
	c.stats.Rounds++
	c.round++
	if c.stats.Rounds >= c.cfg.Rounds {
		c.done = true
		close(c.doneCh)
		return
	}
	c.openRoundLocked()
}
