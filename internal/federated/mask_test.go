package federated

import (
	"testing"
)

func TestPairSeedSymmetric(t *testing.T) {
	secret := []byte("cohort secret")
	if pairSeed(secret, 3, 11) != pairSeed(secret, 11, 3) {
		t.Fatal("pair seed is not symmetric in the pair")
	}
	if pairSeed(secret, 3, 11) == pairSeed(secret, 3, 12) {
		t.Fatal("distinct pairs share a seed")
	}
	if pairSeed(secret, 3, 11) == pairSeed([]byte("other"), 3, 11) {
		t.Fatal("distinct secrets share a pair seed")
	}
}

func TestMaskRoundSeparation(t *testing.T) {
	seed := pairSeed([]byte("secret"), 0, 1)
	a := maskWords(maskPRG(seed, 4), 8, 8)
	b := maskWords(maskPRG(seed, 5), 8, 8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct rounds produced identical mask streams")
	}
}

// TestMaskCancellation is the heart of secure aggregation: summed over
// the full cohort, the pairwise masks cancel bit-exactly in the ring,
// for both ring widths and any walk over multiple variables.
func TestMaskCancellation(t *testing.T) {
	secret := []byte("cohort secret")
	cohort := []uint32{2, 5, 7, 11, 30}
	names := []string{"b", "w"}
	sizes := map[string]int{"b": 3, "w": 17}
	for _, width := range []int{2, 8} {
		raw := make(map[uint32]map[string][]uint64)
		masked := make(map[uint32]map[string][]uint64)
		for ci, id := range cohort {
			raw[id] = make(map[string][]uint64)
			masked[id] = make(map[string][]uint64)
			for _, name := range names {
				words := make([]uint64, sizes[name])
				for i := range words {
					words[i] = uint64(int64((ci+1)*(i+3)) * 7)
				}
				raw[id][name] = words
				masked[id][name] = append([]uint64(nil), words...)
			}
			applyPairMasks(masked[id], names, width, secret, id, cohort, 9)
		}
		for _, id := range cohort {
			blinded := false
			for _, name := range names {
				for i := range raw[id][name] {
					if ringFor(width, masked[id][name][i]) != ringFor(width, raw[id][name][i]) {
						blinded = true
					}
				}
			}
			if !blinded {
				t.Fatalf("width %d: client %d's masked words equal its raw words", width, id)
			}
		}
		for _, name := range names {
			for i := 0; i < sizes[name]; i++ {
				var rawSum, maskedSum uint64
				for _, id := range cohort {
					rawSum += raw[id][name][i]
					maskedSum += masked[id][name][i]
				}
				if ringFor(width, rawSum) != ringFor(width, maskedSum) {
					t.Fatalf("width %d: masks did not cancel at %s[%d]: %#x vs %#x",
						width, name, i, maskedSum, rawSum)
				}
			}
		}
	}
}

// TestDropoutRecovery drops cohort members after masking and checks
// that subtracting the dead clients' masks — re-derived from the seeds
// the survivors reveal — restores the survivors' exact ring sum.
func TestDropoutRecovery(t *testing.T) {
	secret := []byte("cohort secret")
	cohort := []uint32{1, 4, 6, 9}
	dead := []uint32{4, 9}
	names := []string{"w"}
	const n = 12
	const round = 3
	for _, width := range []int{2, 8} {
		acc := map[string][]uint64{"w": make([]uint64, n)}
		want := make([]uint64, n)
		for ci, id := range cohort {
			words := make([]uint64, n)
			for i := range words {
				words[i] = uint64(int64(ci*100 + i))
			}
			masked := map[string][]uint64{"w": append([]uint64(nil), words...)}
			applyPairMasks(masked, names, width, secret, id, cohort, round)
			if id == dead[0] || id == dead[1] {
				continue // dropped before upload
			}
			for i := range want {
				want[i] += words[i]
				acc["w"][i] += masked["w"][i]
			}
		}
		// Each survivor reveals its pair seed with each dead client.
		for _, id := range cohort {
			if id == dead[0] || id == dead[1] {
				continue
			}
			for _, d := range dead {
				subtractDeadMasks(acc, names, width, pairSeed(secret, id, d), id, d, round)
			}
		}
		for i := range want {
			if ringFor(width, acc["w"][i]) != ringFor(width, want[i]) {
				t.Fatalf("width %d: recovered sum at [%d] is %#x, want %#x", width, i, acc["w"][i], want[i])
			}
		}
	}
}

func ringFor(width int, w uint64) uint64 {
	if width == 2 {
		return w & 0xffff
	}
	return w
}
