package federated

import (
	"math"
	"testing"
)

func TestCodecValidate(t *testing.T) {
	cases := []struct {
		name  string
		codec Codec
		ok    bool
	}{
		{"none", NoCompression(), true},
		{"int8 default clip", Codec{Kind: CodecInt8}, true},
		{"int8 explicit clip", Int8Compression(), true},
		{"int8 negative clip", Codec{Kind: CodecInt8, Clip: -1}, false},
		{"topk", TopKCompression(0.1), true},
		{"topk full", TopKCompression(1), true},
		{"topk zero", TopKCompression(0), false},
		{"topk above one", TopKCompression(1.5), false},
		{"unknown kind", Codec{Kind: 9}, false},
	}
	for _, tc := range cases {
		err := tc.codec.validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	c := Codec{Kind: CodecInt8}
	if err := c.validate(); err != nil || c.Clip != DefaultClip {
		t.Fatalf("int8 zero clip normalized to %v (err %v), want %v", c.Clip, err, DefaultClip)
	}
}

func TestCodecWireRoundTrip(t *testing.T) {
	for _, c := range []Codec{NoCompression(), Int8Compression(), TopKCompression(0.05)} {
		if err := c.validate(); err != nil {
			t.Fatal(err)
		}
		back, err := codecFromWire(uint8(c.Kind), c.param())
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if back != c {
			t.Fatalf("wire round trip changed the codec: %v vs %v", back, c)
		}
	}
	if _, err := codecFromWire(7, 0); err == nil {
		t.Fatal("unknown wire codec kind accepted")
	}
}

func TestCoordsPattern(t *testing.T) {
	c := TopKCompression(0.25)
	coords := c.coords(42, "w", 100)
	if len(coords) != 25 {
		t.Fatalf("fraction 0.25 of 100 coordinates kept %d, want 25", len(coords))
	}
	seen := make(map[int]bool)
	last := -1
	for _, i := range coords {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("pattern produced invalid or duplicate coordinate %d", i)
		}
		if i <= last {
			t.Fatalf("pattern is not sorted: %d after %d", i, last)
		}
		seen[i] = true
		last = i
	}
	again := c.coords(42, "w", 100)
	for i := range coords {
		if coords[i] != again[i] {
			t.Fatal("pattern is not deterministic for a fixed seed")
		}
	}
	other := c.coords(42, "b", 100)
	same := true
	for i := range coords {
		if coords[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct variables produced identical patterns")
	}
	if n := len(c.coords(42, "w", 3)); n != 1 {
		t.Fatalf("fraction 0.25 of 3 coordinates kept %d, want at least 1", n)
	}
	if NoCompression().coords(42, "w", 100) != nil {
		t.Fatal("dense codec produced a sparse pattern")
	}
}

// TestEncodeConservation pins the error-feedback invariant at the codec
// level: over any number of rounds, the mass delivered on the wire plus
// the residual still held equals the total raw delta mass — nothing is
// silently lost to quantization or sparsification.
func TestEncodeConservation(t *testing.T) {
	for _, c := range []Codec{NoCompression(), Int8Compression(), TopKCompression(0.3)} {
		if err := c.validate(); err != nil {
			t.Fatal(err)
		}
		const n = 40
		var total, delivered [n]float64
		var residual []float32
		for round := 0; round < 5; round++ {
			delta := make([]float32, n)
			for i := range delta {
				delta[i] = float32(math.Sin(float64(round*n+i))) * 0.01
				total[i] += float64(delta[i])
			}
			coords := c.coords(uint64(round+1), "w", n)
			words, newRes := c.encodeVar(delta, residual, coords)
			residual = newRes
			for w, word := range words {
				i := w
				if coords != nil {
					i = coords[w]
				}
				delivered[i] += c.decodeSum(word)
			}
		}
		for i := 0; i < n; i++ {
			got := delivered[i] + float64(residual[i])
			if math.Abs(got-total[i]) > 1e-6 {
				t.Fatalf("%v: coordinate %d delivered+residual %v, raw total %v", c, i, got, total[i])
			}
		}
	}
}

func TestInt8Clipping(t *testing.T) {
	c := Int8Compression()
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	delta := []float32{10, -10, 0}
	words, res := c.encodeVar(delta, nil, nil)
	if int16(words[0]) != 127 || int16(words[1]) != -127 {
		t.Fatalf("out-of-clip values quantized to %d and %d, want ±127", int16(words[0]), int16(words[1]))
	}
	// The clipped-away mass must land in the residual.
	if math.Abs(float64(res[0])-(10-c.Clip)) > 1e-6 {
		t.Fatalf("clipped residual %v, want %v", res[0], 10-c.Clip)
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	for _, c := range []Codec{NoCompression(), Int8Compression(), TopKCompression(0.5)} {
		if err := c.validate(); err != nil {
			t.Fatal(err)
		}
		neg := int64(-42)
		words := []uint64{0, 1, ^uint64(0), uint64(neg), 0x1234}
		blob := c.marshalUpdate(words)
		back, err := c.parseUpdate(blob, len(words))
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		for i := range words {
			if c.ringMask(back[i]) != c.ringMask(words[i]) {
				t.Fatalf("%v: word %d round-tripped to %#x from %#x", c, i, back[i], words[i])
			}
		}
	}
}

func TestParseUpdateRejectsMalformed(t *testing.T) {
	c := NoCompression()
	good := c.marshalUpdate([]uint64{1, 2, 3})
	cases := []struct {
		name string
		blob []byte
		want int
	}{
		{"empty", nil, 3},
		{"short header", good[:4], 3},
		{"wrong kind", append([]byte{byte(CodecInt8)}, good[1:]...), 3},
		{"wrong width", append([]byte{good[0], 2}, good[2:]...), 3},
		{"wrong count", good, 4},
		{"truncated body", good[:len(good)-3], 3},
		{"trailing bytes", append(append([]byte(nil), good...), 0xff), 3},
	}
	for _, tc := range cases {
		if _, err := c.parseUpdate(tc.blob, tc.want); err == nil {
			t.Errorf("%s: malformed blob accepted", tc.name)
		}
	}
}
