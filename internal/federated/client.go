package federated

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"time"

	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tf/dist"
	"github.com/securetf/securetf/internal/vtime"
)

// ClientConfig configures one simulated federated client.
type ClientConfig struct {
	// ID is the client's identity in [0, Population). Required to be in
	// range; the coordinator refuses out-of-population ids.
	ID int
	// Addr is the coordinator endpoint. Required.
	Addr string
	// Dial opens the connection. Route it through the client's
	// container so the network shield's TLS applies. Defaults to
	// net.Dial.
	Dial func(network, addr string) (net.Conn, error)
	// Model is the client's local replica; Graph, X, Y and Loss are
	// required. Build every replica from the same seed as the
	// coordinator's variables.
	Model dist.Model
	// XS and YS are the client's private data shard. Required.
	XS, YS *tf.Tensor
	// BatchSize is the local minibatch size. Required, ≥ 1.
	BatchSize int
	// LocalSteps is the number of local SGD steps per round. Required,
	// ≥ 1.
	LocalSteps int
	// LocalLR is the local SGD learning rate. Required, > 0.
	LocalLR float64
	// Codec is the uplink quantizer; must match the coordinator's.
	Codec Codec
	// Population is the expected client population N; the handshake
	// verifies it.
	Population int
	// Secret is the cohort masking secret shared by all clients (and
	// withheld from the coordinator). Required unless Unmasked.
	Secret []byte
	// Unmasked disables pairwise masking; must match the coordinator.
	Unmasked bool
	// Clock is the client's virtual clock. Defaults to a fresh clock.
	Clock *vtime.Clock
	// Params supplies cost-model constants. The zero value falls back
	// to sgx.DefaultParams.
	Params sgx.Params
	// StepCost is the virtual compute time charged per local SGD step.
	// Zero means defaultStepCost.
	StepCost time.Duration
	// PollInterval is the virtual wait between polls when the client
	// has no work. Zero means defaultPollInterval.
	PollInterval time.Duration
	// MaxIdlePolls bounds consecutive no-work polls, turning a stuck
	// job (e.g. a quorum that can never fill) into an error instead of
	// a hang. Zero means 10000.
	MaxIdlePolls int
	// Delay injects extra virtual time after local training for the
	// given round — the straggler knob of the quorum tests.
	Delay func(round uint64) time.Duration
	// DropBeforePush simulates a mid-round failure: when it returns
	// true for a round the client trains, masks, then drops its
	// connection instead of uploading, rejoins, and sits the round out.
	// Fires at most once per round.
	DropBeforePush func(round uint64) bool
	// Turnstile, when set, serializes this client's network actions
	// with its peers in deterministic (virtual time, id) order — the
	// discrete-event mode that makes whole runs bit-reproducible. Nil
	// runs the client free-threaded.
	Turnstile *Turnstile
}

// ClientStats counts one client's lifetime events.
type ClientStats struct {
	// Applied is the number of rounds whose upload was accepted.
	Applied int
	// Refusals counts uploads refused because the round had closed at
	// quorum — this client straggled.
	Refusals int
	// Rejoins counts reconnects after injected drops.
	Rejoins int
	// Reveals counts seed reveals uploaded for dead peers.
	Reveals int
	// UplinkBytes totals the payload bytes of this client's uploads,
	// accepted or not.
	UplinkBytes int64
}

// Client is one simulated federated participant: it polls the
// coordinator for round assignments, trains locally on its private
// shard, masks and uploads its quantized update, and reveals pair
// seeds when the coordinator reports dead cohort members.
type Client struct {
	cfg          ClientConfig
	conn         net.Conn
	sess         *tf.Session
	lossAndGrads []*tf.Node
	gradNames    []string // sorted: the wire walk order of every mask stream
	residuals    map[string][]float32
	stats        ClientStats

	// droppedRound marks the round this client trained but dropped out
	// of; a re-assignment of the same round is sat out so the quorum
	// membership stays exactly the surviving uploaders.
	droppedRound uint64
	hasDropped   bool
}

// NewClient validates cfg, dials the coordinator and completes the
// manifest handshake.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Model.Graph == nil || cfg.Model.X == nil || cfg.Model.Y == nil || cfg.Model.Loss == nil {
		return nil, errors.New("federated: ClientConfig.Model requires Graph, X, Y and Loss")
	}
	if cfg.XS == nil || cfg.YS == nil {
		return nil, errors.New("federated: ClientConfig.XS and YS are required")
	}
	if cfg.Addr == "" {
		return nil, errors.New("federated: ClientConfig.Addr is required")
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("federated: ClientConfig.BatchSize must be ≥ 1, got %d", cfg.BatchSize)
	}
	if cfg.LocalSteps < 1 {
		return nil, fmt.Errorf("federated: ClientConfig.LocalSteps must be ≥ 1, got %d", cfg.LocalSteps)
	}
	if cfg.LocalLR <= 0 {
		return nil, fmt.Errorf("federated: ClientConfig.LocalLR must be > 0, got %v", cfg.LocalLR)
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Population {
		return nil, fmt.Errorf("federated: client id %d outside the population of %d", cfg.ID, cfg.Population)
	}
	if err := cfg.Codec.validate(); err != nil {
		return nil, err
	}
	if !cfg.Unmasked && len(cfg.Secret) == 0 {
		return nil, errors.New("federated: ClientConfig.Secret is required for masked aggregation")
	}
	if cfg.Dial == nil {
		cfg.Dial = net.Dial
	}
	if cfg.Clock == nil {
		cfg.Clock = &vtime.Clock{}
	}
	if cfg.Params.WireBandwidth == 0 {
		cfg.Params = sgx.DefaultParams()
	}
	if cfg.StepCost == 0 {
		cfg.StepCost = defaultStepCost
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = defaultPollInterval
	}
	if cfg.MaxIdlePolls == 0 {
		cfg.MaxIdlePolls = 10000
	}

	vars, grads, err := tf.GradientNodes(cfg.Model.Graph, cfg.Model.Loss)
	if err != nil {
		return nil, fmt.Errorf("federated: client %d gradient subgraph: %w", cfg.ID, err)
	}
	if len(grads) == 0 {
		return nil, errors.New("federated: model loss depends on no variables")
	}
	names := make([]string, len(vars))
	for i, v := range vars {
		names[i] = v.Name()
	}
	sort.Strings(names)
	// Re-align the gradient fetch plan with the sorted names.
	byName := make(map[string]*tf.Node, len(vars))
	for i, v := range vars {
		byName[v.Name()] = grads[i]
	}
	plan := []*tf.Node{cfg.Model.Loss}
	for _, name := range names {
		plan = append(plan, byName[name])
	}

	c := &Client{
		cfg:          cfg,
		sess:         tf.NewSession(cfg.Model.Graph, tf.WithSeed(int64(cfg.ID)+1)),
		lossAndGrads: plan,
		gradNames:    names,
		residuals:    make(map[string][]float32, len(names)),
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// Stats returns the client's event counters.
func (c *Client) Stats() ClientStats { return c.stats }

// Close drops the coordinator connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// connect dials the coordinator and runs the manifest handshake,
// verifying population, codec, masking mode and the variable manifest.
// Rejoin after a drop is the same handshake.
func (c *Client) connect() error {
	conn, err := c.cfg.Dial("tcp", c.cfg.Addr)
	if err != nil {
		return fmt.Errorf("federated: client %d dial %s: %w", c.cfg.ID, c.cfg.Addr, err)
	}
	req := &dist.Message{
		Kind:   dist.MsgHello,
		Worker: uint32(c.cfg.ID),
		Shards: uint32(c.cfg.Population),
		Policy: maskedPolicy(c.cfg.Unmasked),
		Codec:  uint8(c.cfg.Codec.Kind),
		TopK:   c.cfg.Codec.param(),
	}
	resp, err := c.roundTrip(conn, req)
	if err != nil {
		conn.Close()
		return fmt.Errorf("federated: client %d handshake: %w", c.cfg.ID, err)
	}
	if resp.Kind != dist.MsgManifest {
		conn.Close()
		return fmt.Errorf("federated: client %d handshake got message kind %d", c.cfg.ID, resp.Kind)
	}
	if !resp.OK {
		conn.Close()
		return errors.New(resp.Err)
	}
	if len(resp.Names) != len(c.gradNames) {
		conn.Close()
		return fmt.Errorf("federated: coordinator serves %d variables, client model has %d",
			len(resp.Names), len(c.gradNames))
	}
	for i, name := range resp.Names {
		if name != c.gradNames[i] {
			conn.Close()
			return fmt.Errorf("federated: coordinator manifest has %q where the client model has %q",
				name, c.gradNames[i])
		}
	}
	c.conn = conn
	return nil
}

// roundTrip sends one request and reads the reply, charging the wire
// and half a LAN round trip on the client's clock.
func (c *Client) roundTrip(conn net.Conn, req *dist.Message) (*dist.Message, error) {
	if _, err := dist.Send(conn, c.cfg.Clock, c.cfg.Params, req); err != nil {
		return nil, err
	}
	c.cfg.Clock.Advance(c.cfg.Params.LANRTT / 2)
	return dist.Receive(conn, c.cfg.Clock, c.cfg.Params)
}

// Run participates until the coordinator reports training complete.
// Every network action is taken under a turnstile turn when one is
// configured, so concurrent clients interleave deterministically.
func (c *Client) Run() error {
	if c.cfg.Turnstile != nil {
		c.cfg.Turnstile.Join(c.cfg.ID, c.cfg.Clock)
		defer c.cfg.Turnstile.Leave(c.cfg.ID)
	}
	defer c.Close()
	idle := 0
	for {
		release := c.cfg.Turnstile.turn(c.cfg.ID)
		resp, err := c.roundTrip(c.conn, &dist.Message{Kind: dist.MsgFedPoll, Worker: uint32(c.cfg.ID)})
		if err != nil {
			release()
			return fmt.Errorf("federated: client %d poll: %w", c.cfg.ID, err)
		}
		switch {
		case resp.Kind == dist.MsgAck && resp.Err == trainingCompleteErr:
			release()
			return nil
		case resp.Kind == dist.MsgAck:
			release()
			return fmt.Errorf("federated: client %d poll refused: %s", c.cfg.ID, resp.Err)
		case resp.Kind == dist.MsgFedUnmask:
			err := c.reveal(resp)
			release()
			if err != nil {
				return err
			}
			idle = 0
		case resp.Kind == dist.MsgFedRound && resp.Closed,
			resp.Kind == dist.MsgFedRound && c.hasDropped && resp.Round == c.droppedRound:
			// No work: the round is closing, we are not sampled, or we
			// dropped out of this round and must sit out its re-assignment
			// so the quorum membership stays the surviving uploaders.
			c.cfg.Clock.Advance(c.cfg.PollInterval)
			release()
			idle++
			if idle > c.cfg.MaxIdlePolls {
				return fmt.Errorf("federated: client %d made no progress in %d polls", c.cfg.ID, idle)
			}
		case resp.Kind == dist.MsgFedRound:
			idle = 0
			err := c.runRound(resp, release)
			if err != nil {
				return err
			}
		default:
			release()
			return fmt.Errorf("federated: client %d poll got message kind %d", c.cfg.ID, resp.Kind)
		}
	}
}

// runRound executes one assignment: install the globals, train
// locally, quantize + mask the delta, and upload — or drop out if the
// failure injection says so. The poll turn (release) is held through
// local training so the upload's virtual send time includes the
// compute; the upload itself is a fresh turn, which is what lets a
// straggler's delayed push sort after its peers' punctual ones.
func (c *Client) runRound(asg *dist.Message, release func()) error {
	round := asg.Round
	base := make(map[string][]float32, len(c.gradNames))
	for _, name := range c.gradNames {
		t, ok := asg.Vars[name]
		if !ok {
			release()
			return fmt.Errorf("federated: round %d assignment is missing variable %q", round, name)
		}
		base[name] = append([]float32(nil), t.Floats()...)
		if err := c.sess.SetVariable(name, t); err != nil {
			release()
			return err
		}
	}
	if err := c.localSteps(); err != nil {
		release()
		return err
	}
	c.cfg.Clock.Advance(time.Duration(c.cfg.LocalSteps) * c.cfg.StepCost)
	if c.cfg.Delay != nil {
		c.cfg.Clock.Advance(c.cfg.Delay(round))
	}

	// Quantize the round delta (with carried residual) into ring words
	// at the round's shared coordinate pattern.
	updates := make(map[string][]uint64, len(c.gradNames))
	pending := make(map[string][]float32, len(c.gradNames))
	for _, name := range c.gradNames {
		t, err := c.sess.Variable(name)
		if err != nil {
			release()
			return err
		}
		now := t.Floats()
		delta := make([]float32, len(now))
		for i := range delta {
			delta[i] = now[i] - base[name][i]
		}
		coords := c.cfg.Codec.coords(asg.Seed, name, len(delta))
		words, newRes := c.cfg.Codec.encodeVar(delta, c.residuals[name], coords)
		updates[name] = words
		pending[name] = newRes
	}
	if !c.cfg.Unmasked {
		applyPairMasks(updates, c.gradNames, c.cfg.Codec.width(),
			c.cfg.Secret, uint32(c.cfg.ID), asg.Clients, round)
	}

	if c.cfg.DropBeforePush != nil && !(c.hasDropped && c.droppedRound == round) && c.cfg.DropBeforePush(round) {
		// Injected failure: drop the connection instead of uploading,
		// then rejoin. Residuals stay uncommitted — nothing was sent.
		c.Close()
		release()
		c.hasDropped, c.droppedRound = true, round
		c.stats.Rejoins++
		return c.connect()
	}
	release()

	// The upload is its own turnstile turn at the post-training clock,
	// so punctual cohort peers upload first and a straggler meets the
	// closed round exactly as the virtual timeline says it should.
	pushRelease := c.cfg.Turnstile.turn(c.cfg.ID)
	defer pushRelease()
	req := &dist.Message{Kind: dist.MsgFedPush, Worker: uint32(c.cfg.ID), Round: round,
		Grads: make(map[string][]byte, len(updates))}
	for name, words := range updates {
		blob := c.cfg.Codec.marshalUpdate(words)
		req.Grads[name] = blob
		c.stats.UplinkBytes += int64(len(blob))
	}
	ack, err := c.roundTrip(c.conn, req)
	if err != nil {
		return fmt.Errorf("federated: client %d push: %w", c.cfg.ID, err)
	}
	if ack.Kind != dist.MsgAck {
		return fmt.Errorf("federated: client %d push got message kind %d", c.cfg.ID, ack.Kind)
	}
	switch {
	case ack.OK:
		// Applied: commit the error-feedback residuals.
		for name, res := range pending {
			c.residuals[name] = res
		}
		c.stats.Applied++
	case ack.Closed:
		// Straggled past the quorum: retryable, residuals untouched —
		// the mass this upload carried was never applied, so it stays
		// in the next round's delta.
		c.stats.Refusals++
	default:
		return fmt.Errorf("federated: client %d push rejected: %s", c.cfg.ID, ack.Err)
	}
	return nil
}

// localSteps runs the round's local SGD on the private shard.
func (c *Client) localSteps() error {
	n := c.cfg.XS.Shape()[0]
	for s := 0; s < c.cfg.LocalSteps; s++ {
		lo := (s * c.cfg.BatchSize) % n
		hi := lo + c.cfg.BatchSize
		if hi > n {
			hi = n
		}
		bx, err := sliceRows(c.cfg.XS, lo, hi)
		if err != nil {
			return err
		}
		by, err := sliceRows(c.cfg.YS, lo, hi)
		if err != nil {
			return err
		}
		out, err := c.sess.Run(tf.Feeds{c.cfg.Model.X: bx, c.cfg.Model.Y: by}, c.lossAndGrads, tf.Training())
		if err != nil {
			return err
		}
		for i, name := range c.gradNames {
			v, err := c.sess.Variable(name)
			if err != nil {
				return err
			}
			vals := append([]float32(nil), v.Floats()...)
			g := out[i+1].Floats()
			for j := range vals {
				vals[j] -= float32(c.cfg.LocalLR) * g[j]
			}
			t, err := tf.FromFloats(v.Shape(), vals)
			if err != nil {
				return err
			}
			if err := c.sess.SetVariable(name, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// reveal answers an unmask request: upload the pair seeds this client
// shares with every dead cohort member, so the coordinator can cancel
// the masks the dead left behind.
func (c *Client) reveal(req *dist.Message) error {
	msg := &dist.Message{Kind: dist.MsgFedSeeds, Worker: uint32(c.cfg.ID), Round: req.Round,
		Grads: make(map[string][]byte, len(req.Clients))}
	for _, deadID := range req.Clients {
		seed := pairSeed(c.cfg.Secret, uint32(c.cfg.ID), deadID)
		msg.Grads[strconv.FormatUint(uint64(deadID), 10)] = append([]byte(nil), seed[:]...)
	}
	ack, err := c.roundTrip(c.conn, msg)
	if err != nil {
		return fmt.Errorf("federated: client %d reveal: %w", c.cfg.ID, err)
	}
	if ack.Kind != dist.MsgAck || !ack.OK {
		return fmt.Errorf("federated: client %d reveal rejected: %s", c.cfg.ID, ack.Err)
	}
	c.stats.Reveals += len(req.Clients)
	return nil
}

// sliceRows returns rows [lo, hi) of a tensor's leading dimension as a
// fresh tensor.
func sliceRows(t *tf.Tensor, lo, hi int) (*tf.Tensor, error) {
	shape := t.Shape()
	if len(shape) == 0 {
		return nil, errors.New("federated: cannot slice a scalar")
	}
	rows := shape[0]
	if lo < 0 || hi > rows || lo >= hi {
		return nil, fmt.Errorf("federated: row slice [%d, %d) of %d rows", lo, hi, rows)
	}
	rowSize := 1
	for _, d := range shape[1:] {
		rowSize *= d
	}
	outShape := append(tf.Shape{hi - lo}, shape[1:]...)
	return tf.FromFloats(outShape, t.Floats()[lo*rowSize:hi*rowSize])
}
