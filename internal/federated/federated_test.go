package federated

import (
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tf/dist"
	"github.com/securetf/securetf/internal/vtime"
)

// tinyModel builds a deterministic linear softmax classifier
// ([n,4] → [n,3]) small enough for fast round tests.
func tinyModel(seed int64) dist.Model {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float32, tf.Shape{-1, 4})
	y := g.Placeholder("y", tf.Float32, tf.Shape{-1, 3})
	w := g.Variable("w", tf.GlorotUniform(tf.Shape{4, 3}, 4, 3, seed))
	b := g.Variable("b", tf.NewTensor(tf.Float32, tf.Shape{3}))
	logits := g.BiasAdd(g.MatMul(x, w), b)
	loss := g.ReduceMean(g.SoftmaxCrossEntropy(logits, y))
	return dist.Model{Graph: g, X: x, Y: y, Loss: loss, Logits: logits}
}

// tinyShard builds a learnable client shard: class = argmax of the
// first three input features.
func tinyShard(n int, seed int64) (*tf.Tensor, *tf.Tensor) {
	xs := tf.RandNormal(tf.Shape{n, 4}, 0.5, seed)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 3
		labels[i] = cls
		xs.Floats()[i*4+cls] += 2
	}
	return xs, tf.OneHot(labels, 3)
}

type jobSpec struct {
	population int
	sampleFrac float64
	quorum     int
	rounds     int
	codec      Codec
	unmasked   bool
	seed       int64
	turnstile  bool
	maxIdle    int
	delay      func(id int, round uint64) time.Duration
	drop       func(id int, round uint64) bool
	tap        func(round uint64, client uint32, name string, payload []byte)
}

var testSecret = []byte("consortium masking secret")

// runJob runs one complete federated job in-process and returns the
// final globals, the coordinator stats and the per-client stats.
func runJob(t *testing.T, spec jobSpec) (map[string]*tf.Tensor, Stats, []ClientStats) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Listener:       ln,
		Vars:           dist.InitialVars(tinyModel(7).Graph),
		Clients:        spec.population,
		SampleFraction: spec.sampleFrac,
		Quorum:         spec.quorum,
		Rounds:         spec.rounds,
		Codec:          spec.codec,
		Unmasked:       spec.unmasked,
		Seed:           spec.seed,
		Params:         sgx.DefaultParams(),
		Tap:            spec.tap,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var ts *Turnstile
	if spec.turnstile {
		ts = NewTurnstile()
	}
	clients := make([]*Client, spec.population)
	clocks := make([]*vtime.Clock, spec.population)
	for id := 0; id < spec.population; id++ {
		xs, ys := tinyShard(30, int64(100+id))
		clocks[id] = &vtime.Clock{}
		cfg := ClientConfig{
			ID:           id,
			Addr:         ln.Addr().String(),
			Model:        tinyModel(7),
			XS:           xs,
			YS:           ys,
			BatchSize:    10,
			LocalSteps:   3,
			LocalLR:      0.1,
			Codec:        spec.codec,
			Population:   spec.population,
			Secret:       testSecret,
			Unmasked:     spec.unmasked,
			Clock:        clocks[id],
			Params:       sgx.DefaultParams(),
			Turnstile:    ts,
			MaxIdlePolls: spec.maxIdle,
		}
		if spec.delay != nil {
			cid := id
			cfg.Delay = func(round uint64) time.Duration { return spec.delay(cid, round) }
		}
		if spec.drop != nil {
			cid := id
			cfg.DropBeforePush = func(round uint64) bool { return spec.drop(cid, round) }
		}
		c, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		clients[id] = c
		// Register the full roster before anyone runs, so the first
		// turns are granted against the complete participant set.
		if ts != nil {
			ts.Join(id, clocks[id])
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, spec.population)
	for id, c := range clients {
		wg.Add(1)
		go func(id int, c *Client) {
			defer wg.Done()
			errs[id] = c.Run()
		}(id, c)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	stats := make([]ClientStats, spec.population)
	for id, c := range clients {
		stats[id] = c.Stats()
	}
	return coord.Vars(), coord.Stats(), stats
}

func varBits(t *testing.T, vars map[string]*tf.Tensor) map[string][]uint32 {
	t.Helper()
	out := make(map[string][]uint32, len(vars))
	for name, v := range vars {
		bits := make([]uint32, len(v.Floats()))
		for i, f := range v.Floats() {
			bits[i] = math.Float32bits(f)
		}
		out[name] = bits
	}
	return out
}

func assertSameVars(t *testing.T, label string, a, b map[string]*tf.Tensor) {
	t.Helper()
	ab, bb := varBits(t, a), varBits(t, b)
	if len(ab) != len(bb) {
		t.Fatalf("%s: %d vs %d variables", label, len(ab), len(bb))
	}
	for name, av := range ab {
		bv, ok := bb[name]
		if !ok || len(av) != len(bv) {
			t.Fatalf("%s: variable %q missing or resized", label, name)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("%s: %s[%d] differs: %#x vs %#x", label, name, i, av[i], bv[i])
			}
		}
	}
}

// payloadKey identifies one accepted upload payload across runs.
func payloadKey(round uint64, client uint32, name string) string {
	return fmt.Sprintf("r%d/c%d/%s", round, client, name)
}

// TestFederatedSumOnlyProperty pins the secure-aggregation contract
// under every codec: each individual uploaded payload is mask-blinded
// (different from the bare quantized update the unmasked ablation
// uploads), yet the committed aggregate is bit-identical — the
// coordinator learns the sum and nothing else, at zero accuracy cost.
func TestFederatedSumOnlyProperty(t *testing.T) {
	for _, codec := range []Codec{NoCompression(), Int8Compression(), TopKCompression(0.5)} {
		t.Run(codec.String(), func(t *testing.T) {
			spec := jobSpec{
				population: 5, sampleFrac: 1, quorum: 5, rounds: 2,
				codec: codec, seed: 21, turnstile: true,
			}
			maskedPayloads := make(map[string][]byte)
			spec.tap = func(round uint64, client uint32, name string, payload []byte) {
				maskedPayloads[payloadKey(round, client, name)] = append([]byte(nil), payload...)
			}
			maskedVars, maskedStats, _ := runJob(t, spec)

			unmaskedPayloads := make(map[string][]byte)
			spec.unmasked = true
			spec.tap = func(round uint64, client uint32, name string, payload []byte) {
				unmaskedPayloads[payloadKey(round, client, name)] = append([]byte(nil), payload...)
			}
			unmaskedVars, unmaskedStats, _ := runJob(t, spec)

			if maskedStats.Rounds != spec.rounds || unmaskedStats.Rounds != spec.rounds {
				t.Fatalf("committed %d masked and %d unmasked rounds, want %d",
					maskedStats.Rounds, unmaskedStats.Rounds, spec.rounds)
			}
			// Every client's every payload must be blinded: with a full
			// quorum both runs train identically, so the unmasked payload
			// IS the raw quantized update of the masked run.
			if len(maskedPayloads) != spec.rounds*spec.population*2 ||
				len(maskedPayloads) != len(unmaskedPayloads) {
				t.Fatalf("tapped %d masked and %d unmasked payloads", len(maskedPayloads), len(unmaskedPayloads))
			}
			for key, raw := range unmaskedPayloads {
				masked, ok := maskedPayloads[key]
				if !ok {
					t.Fatalf("no masked payload for %s", key)
				}
				if string(masked) == string(raw) {
					t.Errorf("%s: masked payload equals the raw quantized update", key)
				}
			}
			// ... and the aggregate the coordinator commits is bit-identical.
			assertSameVars(t, "masked vs unmasked finals", maskedVars, unmaskedVars)
		})
	}
}

// TestFederatedNoneMatchesLocalTraining checks the FedAvg arithmetic
// end to end with a single client: under the exact fixed-point codec
// the committed global equals the client's locally trained variables to
// within one quantization step per coordinate.
func TestFederatedNoneMatchesLocalTraining(t *testing.T) {
	vars, stats, _ := runJob(t, jobSpec{
		population: 1, sampleFrac: 1, quorum: 1, rounds: 1,
		codec: NoCompression(), seed: 3, turnstile: true,
	})
	if stats.Rounds != 1 {
		t.Fatalf("committed %d rounds, want 1", stats.Rounds)
	}
	// Replay the client's local training exactly: same graph seed, same
	// session seed, same shard, same step schedule.
	model := tinyModel(7)
	sess := tf.NewSession(model.Graph, tf.WithSeed(1))
	varNodes, gradNodes, err := tf.GradientNodes(model.Graph, model.Loss)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := tinyShard(30, 100)
	for s := 0; s < 3; s++ {
		lo := (s * 10) % 30
		bx, err := sliceRows(xs, lo, lo+10)
		if err != nil {
			t.Fatal(err)
		}
		by, err := sliceRows(ys, lo, lo+10)
		if err != nil {
			t.Fatal(err)
		}
		fetches := append([]*tf.Node{model.Loss}, gradNodes...)
		out, err := sess.Run(tf.Feeds{model.X: bx, model.Y: by}, fetches, tf.Training())
		if err != nil {
			t.Fatal(err)
		}
		for i, vn := range varNodes {
			v, err := sess.Variable(vn.Name())
			if err != nil {
				t.Fatal(err)
			}
			vals := append([]float32(nil), v.Floats()...)
			for j, g := range out[i+1].Floats() {
				vals[j] -= 0.1 * g
			}
			nt, err := tf.FromFloats(v.Shape(), vals)
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.SetVariable(vn.Name(), nt); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, vn := range varNodes {
		want, err := sess.Variable(vn.Name())
		if err != nil {
			t.Fatal(err)
		}
		got, ok := vars[vn.Name()]
		if !ok {
			t.Fatalf("coordinator is missing variable %q", vn.Name())
		}
		for i := range want.Floats() {
			if diff := math.Abs(float64(got.Floats()[i] - want.Floats()[i])); diff > 1.0/fpScale*2 {
				t.Fatalf("%s[%d]: coordinator %v vs local training %v", vn.Name(), i, got.Floats()[i], want.Floats()[i])
			}
		}
	}
}

// TestFederatedQuorumStragglers pins the straggler-dropout contract:
// the round completes at quorum without the slowest clients, their late
// uploads are refused with the retryable flag, and every survivor
// reveals the stragglers' pair seeds so the masked sum still resolves.
func TestFederatedQuorumStragglers(t *testing.T) {
	const population, quorum, rounds = 6, 4, 3
	straggler := func(id int) bool { return id >= 4 }
	vars, stats, clientStats := runJob(t, jobSpec{
		population: population, sampleFrac: 1, quorum: quorum, rounds: rounds,
		codec: NoCompression(), seed: 9, turnstile: true,
		delay: func(id int, round uint64) time.Duration {
			if straggler(id) {
				return 10 * time.Second
			}
			return 0
		},
	})
	if stats.Rounds != rounds {
		t.Fatalf("committed %d rounds, want %d — the job waited for its stragglers", stats.Rounds, rounds)
	}
	if len(vars) == 0 {
		t.Fatal("coordinator returned no variables")
	}
	for id, cs := range clientStats {
		if straggler(id) {
			if cs.Applied != 0 {
				t.Fatalf("straggler %d had %d uploads accepted", id, cs.Applied)
			}
			if cs.Refusals == 0 {
				t.Fatalf("straggler %d was never refused", id)
			}
		} else if cs.Applied != rounds {
			t.Fatalf("punctual client %d applied %d rounds, want %d", id, cs.Applied, rounds)
		}
	}
	if stats.Refusals == 0 {
		t.Fatal("no refusals recorded for straggling uploads")
	}
	// Every closed round had the 2 stragglers dead, so all 4 accepted
	// uploaders revealed in every round.
	if want := quorum * rounds; stats.Reveals != want {
		t.Fatalf("recorded %d seed reveals, want %d", stats.Reveals, want)
	}
}

// churnSpec is the shared drop schedule of the determinism tests: two
// deterministic clients drop mid-round every round (after training and
// masking, before upload) and rejoin for the next round; the quorum
// equals the survivor count, so the accepted membership is forced
// regardless of upload order.
func churnSpec(turnstile bool) jobSpec {
	const population = 8
	return jobSpec{
		population: population, sampleFrac: 1, quorum: population - 2, rounds: 3,
		codec: TopKCompression(0.5), seed: 17, turnstile: turnstile,
		maxIdle: 1_000_000,
		drop: func(id int, round uint64) bool {
			return id == int(round%population) || id == int((round+4)%population)
		},
	}
}

// TestFederatedChurnDeterministic runs the churn schedule three times —
// once under the discrete-event turnstile and twice free-threaded (the
// mode the race detector exercises) — and requires bit-identical final
// variables from all three: ring sums are order-independent and the
// drop schedule forces the quorum membership, so goroutine scheduling
// must not leak into the result.
func TestFederatedChurnDeterministic(t *testing.T) {
	ordered, orderedStats, _ := runJob(t, churnSpec(true))
	free1, stats1, clientStats := runJob(t, churnSpec(false))
	free2, stats2, _ := runJob(t, churnSpec(false))
	assertSameVars(t, "turnstile vs free-threaded", ordered, free1)
	assertSameVars(t, "free-threaded repeat", free1, free2)
	for _, stats := range []Stats{orderedStats, stats1, stats2} {
		if stats.Rounds != 3 {
			t.Fatalf("committed %d rounds, want 3", stats.Rounds)
		}
		// 2 dead per round, each revealed by all 6 survivors.
		if stats.Reveals != 6*3 {
			t.Fatalf("recorded %d seed reveals, want %d", stats.Reveals, 18)
		}
	}
	var rejoins int
	for _, cs := range clientStats {
		rejoins += cs.Rejoins
	}
	if rejoins != 2*3 {
		t.Fatalf("recorded %d rejoins, want %d (2 drops per round)", rejoins, 6)
	}
}

// TestFederatedSampling checks partial participation: with a fraction
// sampled per round, only cohort members upload, and the cohort
// sequence is a pure function of the job seed.
func TestFederatedSampling(t *testing.T) {
	const population, rounds = 10, 3
	accepted := make(map[uint32]bool)
	var mu sync.Mutex
	_, stats, clientStats := runJob(t, jobSpec{
		population: population, sampleFrac: 0.4, quorum: 4, rounds: rounds,
		codec: NoCompression(), seed: 5, turnstile: true,
		tap: func(round uint64, client uint32, name string, payload []byte) {
			mu.Lock()
			accepted[client] = true
			mu.Unlock()
		},
	})
	if stats.Rounds != rounds {
		t.Fatalf("committed %d rounds, want %d", stats.Rounds, rounds)
	}
	if stats.Accepted != 4*rounds {
		t.Fatalf("accepted %d uploads, want %d", stats.Accepted, 4*rounds)
	}
	var applied int
	for id, cs := range clientStats {
		applied += cs.Applied
		inCohorts := 0
		for r := uint64(0); r < rounds; r++ {
			for _, cid := range roundCohort(5, r, population, 4) {
				if int(cid) == id {
					inCohorts++
				}
			}
		}
		if cs.Applied != inCohorts {
			t.Fatalf("client %d applied %d rounds but was sampled into %d", id, cs.Applied, inCohorts)
		}
		if cs.Applied == 0 && accepted[uint32(id)] {
			t.Fatalf("unsampled client %d had an upload accepted", id)
		}
	}
	if applied != 4*rounds {
		t.Fatalf("clients applied %d rounds total, coordinator accepted %d", applied, 4*rounds)
	}
}

func TestCoordinatorConfigValidation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	vars := dist.InitialVars(tinyModel(7).Graph)
	base := CoordinatorConfig{Listener: ln, Vars: vars, Clients: 100, SampleFraction: 0.5, Quorum: 40, Rounds: 2}
	cases := []struct {
		name string
		mod  func(*CoordinatorConfig)
	}{
		{"no listener", func(c *CoordinatorConfig) { c.Listener = nil }},
		{"no vars", func(c *CoordinatorConfig) { c.Vars = nil }},
		{"no clients", func(c *CoordinatorConfig) { c.Clients = 0 }},
		{"fraction above one", func(c *CoordinatorConfig) { c.SampleFraction = 1.5 }},
		{"negative fraction", func(c *CoordinatorConfig) { c.SampleFraction = -0.1 }},
		{"zero quorum", func(c *CoordinatorConfig) { c.Quorum = 0 }},
		{"quorum above cohort", func(c *CoordinatorConfig) { c.Quorum = 51 }},
		{"int8 ring overflow", func(c *CoordinatorConfig) {
			c.Codec = Int8Compression()
			c.SampleFraction = 1
			c.Quorum = maxInt8Quorum + 1
			c.Clients = 1000
		}},
		{"zero rounds", func(c *CoordinatorConfig) { c.Rounds = 0 }},
		{"bad codec", func(c *CoordinatorConfig) { c.Codec = TopKCompression(2) }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		if _, err := NewCoordinator(cfg); err == nil {
			t.Errorf("%s: coordinator construction succeeded, want error", tc.name)
		}
	}
}

func TestClientConfigValidation(t *testing.T) {
	xs, ys := tinyShard(10, 1)
	base := ClientConfig{
		ID: 0, Addr: "127.0.0.1:1", Model: tinyModel(7), XS: xs, YS: ys,
		BatchSize: 5, LocalSteps: 1, LocalLR: 0.1, Population: 4, Secret: testSecret,
	}
	cases := []struct {
		name string
		mod  func(*ClientConfig)
	}{
		{"no model", func(c *ClientConfig) { c.Model = dist.Model{} }},
		{"no shard", func(c *ClientConfig) { c.XS = nil }},
		{"no addr", func(c *ClientConfig) { c.Addr = "" }},
		{"zero batch", func(c *ClientConfig) { c.BatchSize = 0 }},
		{"zero steps", func(c *ClientConfig) { c.LocalSteps = 0 }},
		{"zero lr", func(c *ClientConfig) { c.LocalLR = 0 }},
		{"id out of population", func(c *ClientConfig) { c.ID = 4 }},
		{"negative id", func(c *ClientConfig) { c.ID = -1 }},
		{"masked without secret", func(c *ClientConfig) { c.Secret = nil }},
		{"bad codec", func(c *ClientConfig) { c.Codec = TopKCompression(-1) }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		if _, err := NewClient(cfg); err == nil {
			t.Errorf("%s: client construction succeeded, want error", tc.name)
		}
	}
}

// TestHandshakeRejectsMismatches pins fail-fast on configuration skew:
// a client whose population, codec or masking mode disagrees with the
// coordinator is refused at the handshake.
func TestHandshakeRejectsMismatches(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Listener: ln, Vars: dist.InitialVars(tinyModel(7).Graph),
		Clients: 4, Quorum: 4, Rounds: 1, Codec: Int8Compression(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	xs, ys := tinyShard(10, 1)
	base := ClientConfig{
		ID: 0, Addr: ln.Addr().String(), Model: tinyModel(7), XS: xs, YS: ys,
		BatchSize: 5, LocalSteps: 1, LocalLR: 0.1, Population: 4,
		Secret: testSecret, Codec: Int8Compression(),
	}
	cases := []struct {
		name string
		mod  func(*ClientConfig)
	}{
		{"population mismatch", func(c *ClientConfig) { c.Population = 8; c.ID = 5 }},
		{"codec mismatch", func(c *ClientConfig) { c.Codec = NoCompression() }},
		{"clip mismatch", func(c *ClientConfig) { c.Codec = Codec{Kind: CodecInt8, Clip: 0.5} }},
		{"masking mismatch", func(c *ClientConfig) { c.Unmasked = true; c.Secret = nil }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		if _, err := NewClient(cfg); err == nil {
			t.Errorf("%s: handshake succeeded, want refusal", tc.name)
		}
	}
	// The matching configuration does connect.
	c, err := NewClient(base)
	if err != nil {
		t.Fatalf("matching handshake failed: %v", err)
	}
	c.Close()
}
