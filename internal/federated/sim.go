package federated

import (
	"sync"

	"github.com/securetf/securetf/internal/vtime"
)

// Turnstile is a discrete-event scheduler for simulated clients: it
// serializes the participants' network actions in global
// (virtual time, id) order. Each client wraps every network exchange in
// a turn; a turn is granted only when every live participant is asking
// for one and this client's (clock, id) pair is the minimum — so the
// interleaving is a pure function of the virtual timeline, and whole
// federated runs (sampling, quorum membership, refusals, final
// variables) are bit-reproducible across processes and GOMAXPROCS
// settings.
//
// A nil *Turnstile grants every turn immediately, which is the
// free-threaded mode the race-detector churn test runs in.
type Turnstile struct {
	mu      sync.Mutex
	cond    *sync.Cond
	clocks  map[int]*vtime.Clock
	waiting map[int]bool
	alive   int
	running bool
}

// NewTurnstile returns an empty scheduler. Every participant must Join
// before any of them starts running, or early turns would be granted
// against an incomplete roster.
func NewTurnstile() *Turnstile {
	t := &Turnstile{
		clocks:  make(map[int]*vtime.Clock),
		waiting: make(map[int]bool),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Join registers a participant and its clock.
func (t *Turnstile) Join(id int, clock *vtime.Clock) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.clocks[id]; ok {
		return
	}
	t.clocks[id] = clock
	t.alive++
}

// Leave removes a finished participant so the remaining ones stop
// waiting for it.
func (t *Turnstile) Leave(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.clocks[id]; !ok {
		return
	}
	delete(t.clocks, id)
	delete(t.waiting, id)
	t.alive--
	t.cond.Broadcast()
}

// turn blocks until it is the caller's turn and returns the release
// that ends it. The caller should hold the turn across one network
// exchange plus the local work that determines its next action time,
// so the next turn request carries an up-to-date clock.
func (t *Turnstile) turn(id int) func() {
	if t == nil {
		return func() {}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.waiting[id] = true
	// A new waiter can complete the roster and unblock the minimum
	// holder — which may be a peer already waiting.
	t.cond.Broadcast()
	for !t.myTurnLocked(id) {
		t.cond.Wait()
	}
	delete(t.waiting, id)
	t.running = true
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			t.running = false
			t.cond.Broadcast()
			t.mu.Unlock()
		})
	}
}

// myTurnLocked reports whether the caller holds the minimum
// (virtual time, id) among the full live roster, with no turn in
// flight. Waiting for the full roster is what makes the order a pure
// function of the clocks rather than of goroutine scheduling.
func (t *Turnstile) myTurnLocked(id int) bool {
	if t.running || len(t.waiting) < t.alive {
		return false
	}
	myTime := t.clocks[id].Now()
	for other := range t.waiting {
		if other == id {
			continue
		}
		otherTime := t.clocks[other].Now()
		if otherTime < myTime || (otherTime == myTime && other < id) {
			return false
		}
	}
	return true
}
