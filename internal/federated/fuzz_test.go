package federated

import (
	"testing"
)

// FuzzMaskedUpdate fuzzes the masked-update blob parser the coordinator
// runs on attacker-reachable input: truncated, bit-flipped and
// fabricated payloads must produce an error — never a panic, and never
// an allocation driven by an attacker-controlled count (the word count
// is validated against the expected manifest size before any slice is
// sized from it).
func FuzzMaskedUpdate(f *testing.F) {
	codecs := []Codec{NoCompression(), Int8Compression(), TopKCompression(0.5)}
	for i := range codecs {
		if err := codecs[i].validate(); err != nil {
			f.Fatal(err)
		}
	}
	for _, c := range codecs {
		neg := int64(-3)
		blob := c.marshalUpdate([]uint64{0, 1, uint64(neg), 0x7fff, ^uint64(0)})
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		flipped := append([]byte(nil), blob...)
		flipped[2] ^= 0x40 // perturb the count field
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		for _, c := range codecs {
			for _, want := range []int{0, 5, 1 << 20} {
				words, err := c.parseUpdate(payload, want)
				if err != nil {
					continue
				}
				if len(words) != want {
					t.Fatalf("%v: parse returned %d words, caller expected %d", c, len(words), want)
				}
				// A payload that parses must re-marshal to the same bytes —
				// the parser accepted exactly the canonical encoding.
				back := c.marshalUpdate(words)
				if string(back) != string(payload) {
					t.Fatalf("%v: accepted a non-canonical %d-byte encoding", c, len(payload))
				}
			}
		}
	})
}
