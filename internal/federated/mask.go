package federated

import (
	"fmt"

	"github.com/securetf/securetf/internal/seccrypto"
)

// pairSeed derives the shared masking seed for the client pair (a, b)
// from the cohort secret. The derivation is symmetric in (a, b) — both
// ends of the pair compute the identical seed — and the coordinator
// never holds the cohort secret, so it cannot derive any pair's masks
// on its own.
func pairSeed(secret []byte, a, b uint32) seccrypto.Key {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return seccrypto.HKDF(secret, saltPair, fmt.Sprintf("pair %d %d", lo, hi))
}

// maskPRG expands a pair seed into the pair's mask stream for one
// round. A fresh round-bound derivation means revealing a pair's seed
// stream for round r (dropout recovery) discloses nothing about any
// other round.
func maskPRG(seed seccrypto.Key, round uint64) *seccrypto.PRG {
	return seccrypto.NewPRG(seccrypto.HKDF(seed[:], saltMask, fmt.Sprintf("round %d", round)))
}

// maskWords draws the next n mask words of the given ring width from
// the pair's stream. The stream is consumed variable-by-variable in
// sorted manifest order, so both ends of the pair — and the coordinator
// during dropout recovery — walk identical words.
func maskWords(g *seccrypto.PRG, n, width int) []uint64 {
	words := make([]uint64, n)
	if width == 2 {
		buf := make([]byte, 2*n)
		g.Read(buf)
		for i := range words {
			words[i] = uint64(buf[2*i]) | uint64(buf[2*i+1])<<8
		}
		return words
	}
	for i := range words {
		words[i] = g.Uint64()
	}
	return words
}

// applyPairMasks blinds one client's encoded words in place with the
// pairwise masks against every other cohort member for the round.
// Client self adds the pair mask when it is the lower id and subtracts
// it when it is the higher id, so summed over any pair the masks
// cancel in uint64 wraparound arithmetic — and therefore in any
// power-of-two ring the words are later truncated to.
//
// updates maps variable name -> encoded words; names must be walked in
// the given (sorted manifest) order so every party consumes each pair
// stream identically.
func applyPairMasks(updates map[string][]uint64, names []string, width int,
	secret []byte, self uint32, cohort []uint32, round uint64) {
	for _, peer := range cohort {
		if peer == self {
			continue
		}
		g := maskPRG(pairSeed(secret, self, peer), round)
		for _, name := range names {
			words := updates[name]
			mask := maskWords(g, len(words), width)
			if self < peer {
				for i := range words {
					words[i] += mask[i]
				}
			} else {
				for i := range words {
					words[i] -= mask[i]
				}
			}
		}
	}
}

// subtractDeadMasks removes the uncancelled masks a dead client j left
// in survivor i's accepted upload, given the pair seed survivor i
// revealed. The survivor added +mask(i,j) if i < j and -mask(i,j)
// otherwise; the coordinator applies the inverse to the accumulated
// sum.
func subtractDeadMasks(acc map[string][]uint64, names []string, width int,
	seed seccrypto.Key, survivor, dead uint32, round uint64) {
	g := maskPRG(seed, round)
	for _, name := range names {
		words := acc[name]
		mask := maskWords(g, len(words), width)
		if survivor < dead {
			for i := range words {
				words[i] -= mask[i]
			}
		} else {
			for i := range words {
				words[i] += mask[i]
			}
		}
	}
}
