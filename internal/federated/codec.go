package federated

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/securetf/securetf/internal/seccrypto"
)

// CodecKind selects the uplink quantizer a federated job runs with. The
// kinds mirror the dist gradient codecs (PR 5) but operate over integer
// rings so pairwise masks cancel bit-exactly in the coordinator's sum.
type CodecKind uint8

const (
	// CodecNone uploads every coordinate as a 64-bit fixed-point word.
	CodecNone CodecKind = iota
	// CodecInt8 quantizes coordinates to signed 8-bit steps of a public
	// clip bound, uploaded as 16-bit ring words so a quorum of sums
	// cannot overflow.
	CodecInt8
	// CodecTopK uploads fixed-point words for only the round's shared
	// pseudo-random coordinate pattern (rand-k); the rest of the delta
	// accumulates in the client's error-feedback residual.
	CodecTopK
)

// Fixed-point scale for CodecNone and CodecTopK words: values are
// encoded as round(x * 2^fpShift) in two's complement. 32 fractional
// bits leave 31 integer bits — far beyond any model-delta magnitude —
// while keeping quantization error below 2^-32 per coordinate.
const fpShift = 32

const fpScale = float64(uint64(1) << fpShift)

// DefaultClip is the public int8 clip bound. It must be identical on
// every client and the coordinator (the quantization grid is part of
// the protocol), so it lives in configuration, not in data-dependent
// per-round statistics.
const DefaultClip = 0.25

// maxInt8Quorum bounds the accepted uploads per round under CodecInt8:
// each word is a signed 8-bit step in [-127, 127] carried in a 16-bit
// ring, and 258*127 = 32766 still fits int16, so a sum of up to 258
// updates cannot wrap.
const maxInt8Quorum = 258

// Codec is a fully-specified uplink quantizer. The zero value is
// CodecNone.
type Codec struct {
	Kind CodecKind
	// Fraction is the CodecTopK coordinate fraction in (0, 1].
	Fraction float64
	// Clip is the CodecInt8 clip bound; 0 means DefaultClip.
	Clip float64
}

// NoCompression returns the exact fixed-point codec.
func NoCompression() Codec { return Codec{Kind: CodecNone} }

// Int8Compression returns the int8 codec with the default clip.
func Int8Compression() Codec { return Codec{Kind: CodecInt8, Clip: DefaultClip} }

// TopKCompression returns the rand-k codec keeping the given fraction
// of coordinates per variable.
func TopKCompression(fraction float64) Codec {
	return Codec{Kind: CodecTopK, Fraction: fraction}
}

// validate normalizes defaults and rejects inconsistent parameters.
func (c *Codec) validate() error {
	switch c.Kind {
	case CodecNone:
		c.Fraction, c.Clip = 0, 0
	case CodecInt8:
		if c.Clip == 0 {
			c.Clip = DefaultClip
		}
		if c.Clip < 0 || math.IsNaN(c.Clip) || math.IsInf(c.Clip, 0) {
			return fmt.Errorf("federated: int8 clip %v is not a positive bound", c.Clip)
		}
		c.Fraction = 0
	case CodecTopK:
		if c.Fraction <= 0 || c.Fraction > 1 || math.IsNaN(c.Fraction) {
			return fmt.Errorf("federated: top-k fraction %v outside (0, 1]", c.Fraction)
		}
		c.Clip = 0
	default:
		return fmt.Errorf("federated: unknown codec kind %d", c.Kind)
	}
	return nil
}

// String names the codec for logs and error messages.
func (c Codec) String() string {
	switch c.Kind {
	case CodecInt8:
		return fmt.Sprintf("int8(clip=%g)", c.Clip)
	case CodecTopK:
		return fmt.Sprintf("topk(f=%g)", c.Fraction)
	default:
		return "none"
	}
}

// width is the ring word size in bytes: the int8 codec sums in a
// 16-bit ring, everything else in the full 64-bit ring.
func (c Codec) width() int {
	if c.Kind == CodecInt8 {
		return 2
	}
	return 8
}

// param carries the codec's scalar parameter across the handshake in
// the TopK wire field: the fraction bits for top-k, the clip bits for
// int8, zero otherwise.
func (c Codec) param() uint64 {
	switch c.Kind {
	case CodecInt8:
		return math.Float64bits(c.Clip)
	case CodecTopK:
		return math.Float64bits(c.Fraction)
	}
	return 0
}

// codecFromWire reverses (Kind, param) from the handshake.
func codecFromWire(kind uint8, param uint64) (Codec, error) {
	c := Codec{Kind: CodecKind(kind)}
	switch c.Kind {
	case CodecInt8:
		c.Clip = math.Float64frombits(param)
	case CodecTopK:
		c.Fraction = math.Float64frombits(param)
	}
	if err := c.validate(); err != nil {
		return Codec{}, err
	}
	return c, nil
}

// coords returns the round's coordinate pattern for an n-element
// variable: nil for dense codecs (all coordinates), or the sorted
// rand-k subset derived from the round's pattern seed and the variable
// name. Every cohort member and the coordinator derive the identical
// pattern, which is what lets pairwise masks cancel per coordinate and
// keeps index bytes off the wire.
func (c Codec) coords(patternSeed uint64, name string, n int) []int {
	if c.Kind != CodecTopK {
		return nil
	}
	k := int(math.Ceil(c.Fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], patternSeed)
	g := seccrypto.NewPRG(seccrypto.HKDF(seed[:], saltPattern, name))
	perm := g.Perm(n)
	coords := perm[:k]
	sort.Ints(coords)
	return coords
}

// wordCount is the number of ring words a variable of n elements
// occupies under the pattern (nil = dense).
func wordCount(coords []int, n int) int {
	if coords == nil {
		return n
	}
	return len(coords)
}

// encodeVar quantizes one variable's delta (plus carried residual) into
// ring words at the given coordinates (nil = all), and returns the new
// residual. Unsent coordinates carry their whole effective value into
// the residual; sent coordinates carry only the quantization error.
func (c Codec) encodeVar(delta, residual []float32, coords []int) ([]uint64, []float32) {
	n := len(delta)
	eff := make([]float64, n)
	for i := 0; i < n; i++ {
		eff[i] = float64(delta[i])
		if residual != nil {
			eff[i] += float64(residual[i])
		}
	}
	newRes := make([]float32, n)
	words := make([]uint64, wordCount(coords, n))
	quantize := func(w, i int) {
		v := eff[i]
		var delivered float64
		if c.Kind == CodecInt8 {
			scale := c.Clip / 127
			q := math.Round(v / scale)
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			words[w] = uint64(int64(q))
			delivered = q * scale
		} else {
			q := math.Round(v * fpScale)
			words[w] = uint64(int64(q))
			delivered = q / fpScale
		}
		newRes[i] = float32(v - delivered)
	}
	if coords == nil {
		for i := 0; i < n; i++ {
			quantize(i, i)
		}
	} else {
		sent := make(map[int]bool, len(coords))
		for w, i := range coords {
			quantize(w, i)
			sent[i] = true
		}
		for i := 0; i < n; i++ {
			if !sent[i] {
				newRes[i] = float32(eff[i])
			}
		}
	}
	return words, newRes
}

// decodeSum converts one summed ring word back to a float contribution.
// The word is the ring sum of up to quorum individual words; for the
// fixed-point codecs sign extension of the 64-bit ring is exact, and
// for int8 the quorum bound guarantees the int16 never wrapped.
func (c Codec) decodeSum(word uint64) float64 {
	if c.Kind == CodecInt8 {
		return float64(int16(word)) * c.Clip / 127
	}
	return float64(int64(word)) / fpScale
}

// marshalUpdate serializes ring words as a self-describing blob:
// [kind u8][width u8][count u32][count x width bytes LE]. Words are
// truncated to the ring width, which is exactly the ring arithmetic.
func (c Codec) marshalUpdate(words []uint64) []byte {
	width := c.width()
	out := make([]byte, 6+len(words)*width)
	out[0] = byte(c.Kind)
	out[1] = byte(width)
	binary.LittleEndian.PutUint32(out[2:], uint32(len(words)))
	for i, w := range words {
		if width == 2 {
			binary.LittleEndian.PutUint16(out[6+2*i:], uint16(w))
		} else {
			binary.LittleEndian.PutUint64(out[6+8*i:], w)
		}
	}
	return out
}

// parseUpdate validates and decodes a masked-update blob for one
// variable. Every structural field is checked against what the
// coordinator already knows (codec, expected word count), so a
// malformed or adversarial blob produces an error — never a panic or
// an attacker-sized allocation.
func (c Codec) parseUpdate(blob []byte, wantWords int) ([]uint64, error) {
	if len(blob) < 6 {
		return nil, fmt.Errorf("federated: update blob of %d bytes is shorter than its header", len(blob))
	}
	if CodecKind(blob[0]) != c.Kind {
		return nil, fmt.Errorf("federated: update codec kind %d, round runs %s", blob[0], c)
	}
	width := int(blob[1])
	if width != c.width() {
		return nil, fmt.Errorf("federated: update word width %d, codec %s uses %d", width, c, c.width())
	}
	count := int(binary.LittleEndian.Uint32(blob[2:]))
	if count != wantWords {
		return nil, fmt.Errorf("federated: update carries %d words, variable needs %d", count, wantWords)
	}
	if len(blob) != 6+count*width {
		return nil, fmt.Errorf("federated: update blob is %d bytes, %d words of %d need %d",
			len(blob), count, width, 6+count*width)
	}
	words := make([]uint64, count)
	for i := range words {
		if width == 2 {
			words[i] = uint64(binary.LittleEndian.Uint16(blob[6+2*i:]))
		} else {
			words[i] = binary.LittleEndian.Uint64(blob[6+8*i:])
		}
	}
	return words, nil
}

// ringMask reduces a word to the codec's ring so accumulated sums stay
// canonical regardless of uint64 carries above the ring width.
func (c Codec) ringMask(word uint64) uint64 {
	if c.width() == 2 {
		return word & 0xffff
	}
	return word
}
