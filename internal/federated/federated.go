// Package federated implements the paper's §6.2 federated-learning use
// case as a first-class subsystem on top of the dist stack: a
// Coordinator that runs FedAvg round logic over hundreds to thousands
// of simulated clients on virtual clocks, with per-round deterministic
// client sampling, quorum rounds with straggler dropout, and
// pairwise-masked secure aggregation so the coordinator only ever
// observes the *sum* of client updates, never an individual one.
//
// # Round lifecycle
//
// Every exchange is client-initiated (poll → train → push → reveal), so
// the coordinator's serve loop never blocks on a peer. A round opens by
// sampling a cohort of ⌈SampleFraction·N⌉ clients with a deterministic
// PRG keyed from the job seed and round number. Sampled clients receive
// the current global variables, run LocalSteps of local SGD on their
// private shard, and upload the masked, codec-encoded delta. The round
// closes the moment Quorum uploads have been accepted — stragglers are
// not waited for; their late uploads are refused with the retryable
// Closed wire flag (mirroring the async Stale idiom), and they rejoin
// at the next round's poll. The refusal is load-bearing for privacy,
// not just latency: once the dead clients' pair seeds have been
// revealed, accepting a straggler's masked payload would let the
// coordinator unmask it.
//
// # Secure aggregation
//
// Cohort members i and j share a pair seed derived (HKDF) from a cohort
// secret the coordinator never holds. Each pair expands the seed
// through the deterministic AES-CTR PRG into per-round mask words over
// the codec's integer ring; the lower-id client adds the mask to its
// encoded update, the higher-id one subtracts it, so the masks cancel
// exactly in the coordinator's ring sum. Clients that were sampled but
// missed the quorum leave their pairwise masks uncancelled; each
// surviving uploader reveals its pair seeds for exactly the dead
// clients, the coordinator re-expands those masks and subtracts them,
// and the quorum sum is well-defined again. The coordinator learns only
// masks of updates it never received. All mask arithmetic happens
// post-quantization in the integer domain (uint64 wraparound, truncated
// to the codec's ring width on the wire), so cancellation is bit-exact
// — the masked aggregate is identical to the unmasked one, which the
// sum-only property test pins.
//
// # Codec interaction
//
// The uplink codec quantizes each client's model delta into ring words:
// fixed-point int64 words (CodecNone), int8 steps of a public clip
// bound shared by configuration (CodecInt8, 2-byte ring — the quorum
// is bounded so the int16 sum cannot overflow), or fixed-point words at
// a per-round pseudo-random coordinate pattern (CodecTopK). The top-k
// pattern is derived from the round's pattern seed by every cohort
// member and the coordinator alike, because pairwise masks only cancel
// if every pair masks the same coordinates — and it costs no index
// bytes on the wire. Quantization and sparsification mass is carried in
// per-client error-feedback residuals, committed only when an upload is
// acked as accepted; a refused round leaves them untouched.
package federated

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"github.com/securetf/securetf/internal/seccrypto"
)

// Domain-separation salts of every PRG/HKDF derivation in the
// subsystem. Sampling and patterns derive from the coordinator's job
// seed; pair seeds and masks derive from the cohort secret.
const (
	saltSample  = "securetf-fed-sample"
	saltPattern = "securetf-fed-pattern"
	saltPair    = "securetf-fed-pair"
	saltMask    = "securetf-fed-mask"
)

// trainingCompleteErr is the poll refusal that ends a client's run
// cleanly: the configured number of rounds has been committed.
const trainingCompleteErr = "federated: training complete"

// defaultPollInterval is the virtual time a client waits between polls
// when it has no work (not sampled, or the round is closing).
const defaultPollInterval = 10 * time.Millisecond

// defaultStepCost is the virtual compute time charged per local SGD
// step when the client config does not override it.
const defaultStepCost = 2 * time.Millisecond

// jobKey derives a PRG key from the job seed for one purpose (salt) and
// round, so sampling and pattern streams are domain-separated and
// deterministic given (seed, round).
func jobKey(seed int64, salt string, round uint64) seccrypto.Key {
	var ikm [8]byte
	binary.LittleEndian.PutUint64(ikm[:], uint64(seed))
	return seccrypto.HKDF(ikm[:], salt, fmt.Sprintf("round %d", round))
}

// roundCohort samples the round's client cohort: a uniform `sampled`
// -subset of [0, population), sorted ascending. Deterministic given
// (seed, round) — the coordinator and any test harness agree without
// communication.
func roundCohort(seed int64, round uint64, population, sampled int) []uint32 {
	g := seccrypto.NewPRG(jobKey(seed, saltSample, round))
	perm := g.Perm(population)
	ids := make([]uint32, sampled)
	for i := 0; i < sampled; i++ {
		ids[i] = uint32(perm[i])
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// roundPatternSeed derives the round's top-k pattern seed, handed to
// the cohort in the round assignment frame.
func roundPatternSeed(seed int64, round uint64) uint64 {
	return seccrypto.NewPRG(jobKey(seed, saltPattern, round)).Uint64()
}
