package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/securetf/securetf/internal/cas"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/models"
	"github.com/securetf/securetf/internal/seccrypto"
	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/shield/fsshield"
	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tflite"
)

func newPlatform(t *testing.T, name string) *sgx.Platform {
	t.Helper()
	p, err := sgx.NewPlatform(name, sgx.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func launchContainer(t *testing.T, kind RuntimeKind, mods ...func(*Config)) *Container {
	t.Helper()
	cfg := Config{
		Kind:     kind,
		Platform: newPlatform(t, "node"),
		Image:    sgx.SyntheticImage("tflite-app", tflite.BinarySize, 4<<20),
		HostFS:   fsapi.NewMem(),
	}
	for _, m := range mods {
		m(&cfg)
	}
	c, err := Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestLaunchAllRuntimeKinds(t *testing.T) {
	for _, kind := range []RuntimeKind{
		RuntimeSconeHW, RuntimeSconeSIM, RuntimeGraphene, RuntimeNativeGlibc, RuntimeNativeMusl,
	} {
		c := launchContainer(t, kind)
		if (c.Enclave() != nil) != kind.Shielded() {
			t.Fatalf("%v: enclave presence mismatch", kind)
		}
		if err := fsapi.WriteFile(c.FS(), "f", []byte("x")); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got, err := fsapi.ReadFile(c.FS(), "f")
		if err != nil || string(got) != "x" {
			t.Fatalf("%v: fs round trip failed: %v", kind, err)
		}
	}
}

func TestLaunchValidation(t *testing.T) {
	if _, err := Launch(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Launch(Config{Platform: newPlatform(t, "p"), HostFS: fsapi.NewMem(), Kind: RuntimeKind(42)}); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestFSShieldIntegration(t *testing.T) {
	key, err := seccrypto.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	host := fsapi.NewMem()
	c := launchContainer(t, RuntimeSconeHW, func(cfg *Config) {
		cfg.HostFS = host
		cfg.FSShieldRules = []fsshield.Rule{{Prefix: "models/", Level: fsshield.LevelEncrypted}}
		cfg.VolumeKey = &key
	})
	secret := []byte("proprietary model weights")
	if err := fsapi.WriteFile(c.FS(), "models/m.tflite", secret); err != nil {
		t.Fatal(err)
	}
	// Host sees ciphertext only.
	raw, err := fsapi.ReadFile(host, "models/m.tflite")
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) == string(secret) {
		t.Fatal("model stored in plaintext on the host")
	}
	got, err := fsapi.ReadFile(c.FS(), "models/m.tflite")
	if err != nil || string(got) != string(secret) {
		t.Fatalf("shielded read failed: %v", err)
	}
}

// clusterWithCAS builds a CAS and a worker container wired for
// attestation.
func clusterWithCAS(t *testing.T) (*cas.Server, *Container, *cas.Client) {
	t.Helper()
	casPlat := newPlatform(t, "cas-node")
	workerPlat := newPlatform(t, "worker-node")
	server, err := cas.NewServer(cas.ServerConfig{
		Platform:         casPlat,
		StoreFS:          fsapi.NewMem(),
		TrustedPlatforms: TrustedKeys(workerPlat),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })

	c, err := Launch(Config{
		Kind:     RuntimeSconeHW,
		Platform: workerPlat,
		Image:    sgx.SyntheticImage("worker-app", tflite.BinarySize, 4<<20),
		HostFS:   fsapi.NewMem(),
		FSShieldRules: []fsshield.Rule{
			{Prefix: "volumes/data/", Level: fsshield.LevelEncrypted},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	volKey := make([]byte, seccrypto.KeySize)
	for i := range volKey {
		volKey[i] = byte(i)
	}
	client, err := cas.NewClient(cas.ClientConfig{
		Enclave:        c.Enclave(),
		Addr:           server.Addr(),
		CASMeasurement: server.Measurement(),
		PlatformKeys:   TrustedKeys(casPlat, workerPlat),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	session := &cas.Session{
		Name:         "inference",
		OwnerToken:   "tok",
		Measurements: []string{c.Enclave().Measurement().Hex()},
		Secrets:      map[string][]byte{"api-key": []byte("s3cret")},
		Volumes:      map[string][]byte{"data": volKey},
		Services:     []string{"worker-0", "localhost", "127.0.0.1"},
	}
	if err := client.Register(session); err != nil {
		t.Fatal(err)
	}
	return server, c, client
}

func TestProvisionFromCAS(t *testing.T) {
	_, c, client := clusterWithCAS(t)
	prov, timing, err := c.Provision(client, "inference", "data")
	if err != nil {
		t.Fatal(err)
	}
	if string(prov.Secrets["api-key"]) != "s3cret" {
		t.Fatal("secrets missing")
	}
	if timing.Total() <= 0 {
		t.Fatal("no attestation time charged")
	}
	if !c.NetShielded() {
		t.Fatal("network shield not provisioned")
	}
	// The provisioned volume key must protect the volume prefix.
	if err := fsapi.WriteFile(c.FS(), "volumes/data/input.bin", []byte("image")); err != nil {
		t.Fatal(err)
	}
	got, err := fsapi.ReadFile(c.FS(), "volumes/data/input.bin")
	if err != nil || string(got) != "image" {
		t.Fatalf("volume round trip: %v", err)
	}
}

func TestProvisionRollbackDetection(t *testing.T) {
	// Files written under a CAS-audited volume must detect rollback
	// across container restarts (the §3.3.2 freshness mechanism).
	_, c, client := clusterWithCAS(t)
	if _, _, err := c.Provision(client, "inference", "data"); err != nil {
		t.Fatal(err)
	}
	host := c.cfg.HostFS

	if err := fsapi.WriteFile(c.FS(), "volumes/data/state.bin", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	oldData, _ := fsapi.ReadFile(host, "volumes/data/state.bin")
	oldMeta, _ := fsapi.ReadFile(host, "volumes/data/state.bin.sfsmeta")
	if err := fsapi.WriteFile(c.FS(), "volumes/data/state.bin", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Adversary rolls back the host files to the old snapshot.
	fsapi.WriteFile(host, "volumes/data/state.bin", oldData)
	fsapi.WriteFile(host, "volumes/data/state.bin.sfsmeta", oldMeta)

	_, err := fsapi.ReadFile(c.FS(), "volumes/data/state.bin")
	if !errors.Is(err, fsshield.ErrRolledBack) {
		t.Fatalf("err = %v, want ErrRolledBack via CAS audit", err)
	}
}

func TestInferenceServiceEndToEnd(t *testing.T) {
	// Train a tiny model, freeze, convert, serve it from a shielded
	// container and classify over mutual TLS — the §6.1 deployment shape.
	h := models.MNISTMLP(77)
	sess := tf.NewSession(h.Graph)
	defer sess.Close()
	frozen, fx, fl, err := models.FreezeForInference(h, sess)
	if err != nil {
		t.Fatal(err)
	}
	model, err := tflite.Convert(frozen, []*tf.Node{fx}, []*tf.Node{fl}, tflite.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ca, err := seccrypto.NewCA("test-ca")
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("worker-0", "localhost", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	clientCert, err := ca.Issue("client-0")
	if err != nil {
		t.Fatal(err)
	}

	server := launchContainer(t, RuntimeSconeHW)
	if err := server.UseIdentity(serverCert, ca, true); err != nil {
		t.Fatal(err)
	}
	svc, err := NewInferenceService(server, model, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	clientContainer := launchContainer(t, RuntimeNativeGlibc)
	if err := clientContainer.UseIdentity(clientCert, ca, false); err != nil {
		t.Fatal(err)
	}
	client, err := NewInferenceClient(clientContainer, svc.Addr(), "worker-0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	input := tf.RandNormal(tf.Shape{3, 28, 28, 1}, 1, 5)
	classes, err := client.Classify(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 3 {
		t.Fatalf("classes = %v", classes)
	}
	for _, cls := range classes {
		if cls < 0 || cls >= 10 {
			t.Fatalf("class %d out of range", cls)
		}
	}
	if svc.Served() != 1 {
		t.Fatalf("served = %d", svc.Served())
	}
}

// buildServiceModel freezes and converts a small MLP for service tests.
func buildServiceModel(t *testing.T) *tflite.Model {
	t.Helper()
	h := models.MNISTMLP(77)
	sess := tf.NewSession(h.Graph)
	defer sess.Close()
	frozen, fx, fl, err := models.FreezeForInference(h, sess)
	if err != nil {
		t.Fatal(err)
	}
	model, err := tflite.Convert(frozen, []*tf.Node{fx}, []*tf.Node{fl}, tflite.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestInferenceServiceCloseWithIdleConnection(t *testing.T) {
	server := launchContainer(t, RuntimeSconeHW)
	svc, err := NewInferenceService(server, buildServiceModel(t), "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}

	// A client that classified once and then parks on the open
	// connection used to pin Close in wg.Wait forever.
	clientC := launchContainer(t, RuntimeNativeGlibc)
	client, err := NewInferenceClient(clientC, svc.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Classify(tf.RandNormal(tf.Shape{1, 28, 28, 1}, 1, 5)); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- svc.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung while a client held its connection open")
	}
}

func TestInferenceClientConcurrentClassify(t *testing.T) {
	server := launchContainer(t, RuntimeSconeHW)
	svc, err := NewInferenceService(server, buildServiceModel(t), "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	clientC := launchContainer(t, RuntimeNativeGlibc)
	client, err := NewInferenceClient(clientC, svc.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Concurrent Classify calls on one client must not interleave frames
	// on the shared connection (run with -race to check the locking).
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				classes, err := client.Classify(tf.RandNormal(tf.Shape{2, 28, 28, 1}, 1, int64(i*10+j)))
				if err != nil {
					errs <- err
					return
				}
				if len(classes) != 2 {
					errs <- fmt.Errorf("classified %d rows, want 2", len(classes))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := svc.Served(); got != 40 {
		t.Fatalf("served = %d, want 40", got)
	}
}

func TestContainerAccessors(t *testing.T) {
	c := launchContainer(t, RuntimeSconeHW)
	if c.Kind() != RuntimeSconeHW {
		t.Fatalf("kind = %v", c.Kind())
	}
	if c.Name() == "" {
		t.Fatal("empty runtime name")
	}
	if c.Platform() == nil {
		t.Fatal("no platform")
	}
	if c.Params().EPCSize != c.Platform().Params().EPCSize {
		t.Fatal("params mismatch")
	}
	if c.Clock() != c.Platform().Clock() {
		t.Fatal("clock mismatch")
	}
}

func TestRuntimeKindStrings(t *testing.T) {
	want := map[RuntimeKind]string{
		RuntimeSconeHW:     "HW",
		RuntimeSconeSIM:    "Sim",
		RuntimeGraphene:    "Graphene",
		RuntimeNativeGlibc: "Native glibc",
		RuntimeNativeMusl:  "Native musl",
	}
	for kind, label := range want {
		if got := kind.String(); got != label {
			t.Fatalf("%d.String() = %q, want %q", kind, got, label)
		}
	}
	if got := RuntimeKind(99).String(); got == "" {
		t.Fatal("unknown kind has empty label")
	}
	shielded := map[RuntimeKind]bool{
		RuntimeSconeHW: true, RuntimeSconeSIM: true, RuntimeGraphene: true,
		RuntimeNativeGlibc: false, RuntimeNativeMusl: false,
	}
	for kind, want := range shielded {
		if kind.Shielded() != want {
			t.Fatalf("%v.Shielded() = %v", kind, kind.Shielded())
		}
	}
}
