package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tflite"
)

// InferenceService is the classifier service of §4.2: it "takes
// classification requests via network, and uses TensorFlow Lite for
// inference". Requests and responses are length-prefixed tensors over a
// (typically shielded) connection.
type InferenceService struct {
	container *Container
	interp    *tflite.Interpreter
	ln        net.Listener

	mu     sync.Mutex
	served int

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewInferenceService loads a model into an interpreter bound to the
// container's device and starts serving on addr.
func NewInferenceService(c *Container, model *tflite.Model, addr string, threads int) (*InferenceService, error) {
	interp, err := tflite.NewInterpreter(model, tflite.WithDevice(c.Device(threads)))
	if err != nil {
		return nil, err
	}
	if err := interp.AllocateTensors(); err != nil {
		interp.Close()
		return nil, err
	}
	ln, err := c.Listen("tcp", addr)
	if err != nil {
		interp.Close()
		return nil, err
	}
	s := &InferenceService{container: c, interp: interp, ln: ln, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the service address.
func (s *InferenceService) Addr() string { return s.ln.Addr().String() }

// Served reports how many requests completed.
func (s *InferenceService) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Close stops the service.
func (s *InferenceService) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.ln.Close()
	s.wg.Wait()
	s.interp.Close()
	return err
}

func (s *InferenceService) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *InferenceService) handle(conn net.Conn) {
	for {
		input, err := readTensor(conn)
		if err != nil {
			return
		}
		// The interpreter is not safe for concurrent Invoke; serialize.
		s.mu.Lock()
		err = s.classify(conn, input)
		if err == nil {
			s.served++
		}
		s.mu.Unlock()
		if err != nil {
			return
		}
	}
}

func (s *InferenceService) classify(conn net.Conn, input *tf.Tensor) error {
	if err := s.interp.SetInput(0, input); err != nil {
		return err
	}
	if err := s.interp.Invoke(); err != nil {
		return err
	}
	out, err := s.interp.Output(0)
	if err != nil {
		return err
	}
	// Respond with the argmax class per row.
	shape := out.Shape()
	cols := shape[len(shape)-1]
	rows := out.NumElements() / cols
	classes := tf.NewTensor(tf.Int32, tf.Shape{rows})
	for r := 0; r < rows; r++ {
		best, bestIdx := out.Floats()[r*cols], 0
		for c2 := 1; c2 < cols; c2++ {
			if v := out.Floats()[r*cols+c2]; v > best {
				best, bestIdx = v, c2
			}
		}
		classes.Ints()[r] = int32(bestIdx)
	}
	return writeTensor(conn, classes)
}

// InferenceClient talks to an InferenceService.
type InferenceClient struct {
	conn net.Conn
}

// NewInferenceClient connects a container to a service, using the
// container's shielded dial when provisioned.
func NewInferenceClient(c *Container, addr, serverName string) (*InferenceClient, error) {
	conn, err := c.Dial("tcp", addr, serverName)
	if err != nil {
		return nil, err
	}
	return &InferenceClient{conn: conn}, nil
}

// Classify sends a batch and returns the predicted class per row.
func (cl *InferenceClient) Classify(input *tf.Tensor) ([]int, error) {
	if err := writeTensor(cl.conn, input); err != nil {
		return nil, err
	}
	out, err := readTensor(cl.conn)
	if err != nil {
		return nil, err
	}
	if out.DType() != tf.Int32 {
		return nil, fmt.Errorf("core: unexpected response dtype %v", out.DType())
	}
	classes := make([]int, out.NumElements())
	for i, v := range out.Ints() {
		classes[i] = int(v)
	}
	return classes, nil
}

// Close closes the client connection.
func (cl *InferenceClient) Close() error { return cl.conn.Close() }

// maxTensorFrame bounds tensor frames on the wire.
const maxTensorFrame = 1 << 30

func writeTensor(w io.Writer, t *tf.Tensor) error {
	enc := tf.EncodeTensor(t)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(enc)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(enc)
	return err
}

func readTensor(r io.Reader) (*tf.Tensor, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxTensorFrame {
		return nil, fmt.Errorf("core: tensor frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return tf.DecodeTensor(buf)
}
