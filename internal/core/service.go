package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tflite"
)

// InferenceService is the classifier service of §4.2: it "takes
// classification requests via network, and uses TensorFlow Lite for
// inference". Requests and responses are length-prefixed tensors over a
// (typically shielded) connection.
//
// This is the paper-faithful single-model baseline. The production path
// is the serving gateway (internal/serving), which the public
// ServeInference/ServeModels facade routes to; this implementation is
// kept as the minimal reference the gateway is benchmarked against.
type InferenceService struct {
	container *Container
	interp    *tflite.Interpreter
	ln        net.Listener

	mu     sync.Mutex
	served int

	conns ConnTracker

	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
	closeErr  error
}

// NewInferenceService loads a model into an interpreter bound to the
// container's device and starts serving on addr.
func NewInferenceService(c *Container, model *tflite.Model, addr string, threads int) (*InferenceService, error) {
	interp, err := tflite.NewInterpreter(model, tflite.WithDevice(c.Device(threads)))
	if err != nil {
		return nil, err
	}
	if err := interp.AllocateTensors(); err != nil {
		interp.Close()
		return nil, err
	}
	ln, err := c.Listen("tcp", addr)
	if err != nil {
		interp.Close()
		return nil, err
	}
	s := &InferenceService{
		container: c,
		interp:    interp,
		ln:        ln,
		closed:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the service address.
func (s *InferenceService) Addr() string { return s.ln.Addr().String() }

// Served reports how many requests completed.
func (s *InferenceService) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Close stops the service. Live connections are closed so handlers
// parked in blocking reads wake up and exit; a client idling on an open
// connection can no longer hang the shutdown.
func (s *InferenceService) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.closeErr = s.ln.Close()
		s.conns.CloseAll()
		s.wg.Wait()
		s.interp.Close()
	})
	return s.closeErr
}

func (s *InferenceService) serve() {
	defer s.wg.Done()
	for {
		//securetf:allow blockingsyscall s.ln comes from Container.Listen, whose runtime wrapper routes Accept through Runtime.BlockingSyscall
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				// Back off briefly so a persistent accept error (e.g.
				// fd exhaustion) cannot busy-spin the loop.
				//securetf:allow nowallclock accept-error backoff paces a real goroutine, not accounted work
				time.Sleep(time.Millisecond)
				continue
			}
		}
		if !s.conns.Track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.conns.Untrack(conn)
			s.handle(conn)
		}()
	}
}

func (s *InferenceService) handle(conn net.Conn) {
	for {
		input, err := readTensor(conn)
		if err != nil {
			return
		}
		// The interpreter is not safe for concurrent Invoke; serialize.
		s.mu.Lock()
		err = s.classify(conn, input)
		if err == nil {
			s.served++
		}
		s.mu.Unlock()
		if err != nil {
			return
		}
	}
}

func (s *InferenceService) classify(conn net.Conn, input *tf.Tensor) error {
	if err := s.interp.SetInput(0, input); err != nil {
		return err
	}
	if err := s.interp.Invoke(); err != nil {
		return err
	}
	out, err := s.interp.Output(0)
	if err != nil {
		return err
	}
	// Respond with the argmax class per row.
	shape := out.Shape()
	cols := shape[len(shape)-1]
	rows := out.NumElements() / cols
	classes := tf.NewTensor(tf.Int32, tf.Shape{rows})
	for r := 0; r < rows; r++ {
		best, bestIdx := out.Floats()[r*cols], 0
		for c2 := 1; c2 < cols; c2++ {
			if v := out.Floats()[r*cols+c2]; v > best {
				best, bestIdx = v, c2
			}
		}
		classes.Ints()[r] = int32(bestIdx)
	}
	return writeTensor(conn, classes)
}

// InferenceClient talks to an InferenceService. It is safe for
// concurrent use: Classify serializes the request/response exchange with
// a mutex so goroutines cannot interleave frames on the shared stream.
type InferenceClient struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewInferenceClient connects a container to a service, using the
// container's shielded dial when provisioned.
func NewInferenceClient(c *Container, addr, serverName string) (*InferenceClient, error) {
	conn, err := c.Dial("tcp", addr, serverName)
	if err != nil {
		return nil, err
	}
	return &InferenceClient{conn: conn}, nil
}

// Classify sends a batch and returns the predicted class per row.
func (cl *InferenceClient) Classify(input *tf.Tensor) ([]int, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err := writeTensor(cl.conn, input); err != nil {
		return nil, err
	}
	out, err := readTensor(cl.conn)
	if err != nil {
		return nil, err
	}
	if out.DType() != tf.Int32 {
		return nil, fmt.Errorf("core: unexpected response dtype %v", out.DType())
	}
	classes := make([]int, out.NumElements())
	for i, v := range out.Ints() {
		classes[i] = int(v)
	}
	return classes, nil
}

// Close closes the client connection.
func (cl *InferenceClient) Close() error { return cl.conn.Close() }

// MaxFrame bounds length-prefixed frames on the wire (both the classic
// tensor protocol and the serving gateway's extended one).
const MaxFrame = 1 << 30

// WriteFrame writes one length-prefixed payload (4-byte little-endian
// length, then the bytes).
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload, enforcing MaxFrame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("core: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func writeTensor(w io.Writer, t *tf.Tensor) error {
	return WriteFrame(w, tf.EncodeTensor(t))
}

func readTensor(r io.Reader) (*tf.Tensor, error) {
	buf, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return tf.DecodeTensor(buf)
}
