// Package core implements the secureTF controller — the paper's primary
// contribution (Fig. 2 and Fig. 3): a secure machine-learning container
// that assembles a shielded runtime (SCONE, or the Graphene/native
// baselines), the file-system and network shields, and CAS-provisioned
// secrets around the TensorFlow/TensorFlow Lite engines, so that
// unmodified model code runs with end-to-end protection of input data,
// models and code.
package core

import (
	"crypto/ecdsa"
	"crypto/tls"
	"fmt"
	"net"

	"github.com/securetf/securetf/internal/cas"
	"github.com/securetf/securetf/internal/device"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/graphene"
	"github.com/securetf/securetf/internal/nativert"
	"github.com/securetf/securetf/internal/scone"
	"github.com/securetf/securetf/internal/seccrypto"
	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/shield/fsshield"
	"github.com/securetf/securetf/internal/shield/netshield"
	"github.com/securetf/securetf/internal/vtime"
)

// RuntimeKind selects the execution environment of a container. The five
// kinds are exactly the systems compared in the paper's Figure 5.
type RuntimeKind int

// Runtime kinds.
const (
	RuntimeSconeHW RuntimeKind = iota + 1
	RuntimeSconeSIM
	RuntimeGraphene
	RuntimeNativeGlibc
	RuntimeNativeMusl
)

// String names the runtime kind as in the paper's figures.
func (k RuntimeKind) String() string {
	switch k {
	case RuntimeSconeHW:
		return "HW"
	case RuntimeSconeSIM:
		return "Sim"
	case RuntimeGraphene:
		return "Graphene"
	case RuntimeNativeGlibc:
		return "Native glibc"
	case RuntimeNativeMusl:
		return "Native musl"
	default:
		return "invalid"
	}
}

// Shielded reports whether the kind runs inside an enclave.
func (k RuntimeKind) Shielded() bool {
	switch k {
	case RuntimeSconeHW, RuntimeSconeSIM, RuntimeGraphene:
		return true
	default:
		return false
	}
}

// runtime is the common surface of the scone, graphene and native
// runtimes (satisfied structurally).
type runtime interface {
	Name() string
	Enclave() *sgx.Enclave
	Device(threads int) device.Device
	FS() fsapi.FS
	Dial(network, addr string) (net.Conn, error)
	Listen(network, addr string) (net.Listener, error)
	Close() error
}

var (
	_ runtime = (*scone.Runtime)(nil)
	_ runtime = (*graphene.Runtime)(nil)
	_ runtime = (*nativert.Runtime)(nil)
)

// Config configures a secure container.
type Config struct {
	// Kind selects the runtime. Required.
	Kind RuntimeKind
	// Platform hosts the enclave (unused for native kinds, where only
	// its clock and params are borrowed). Required.
	Platform *sgx.Platform
	// Image is the application image loaded into the enclave. Required
	// for shielded kinds.
	Image sgx.Image
	// HostFS is the untrusted host file system. Required.
	HostFS fsapi.FS
	// Threads is the container's compute parallelism. Defaults to the
	// platform's physical cores.
	Threads int

	// FSShieldRules enables the file-system shield over the runtime FS
	// when non-empty. The volume key comes from VolumeKey or from CAS
	// provisioning.
	FSShieldRules []fsshield.Rule
	// VolumeKey is the file-system shield volume key when not using CAS.
	VolumeKey *seccrypto.Key
	// Audit is the freshness service for the file-system shield
	// (optional; a CAS provisioning step can also install one).
	Audit fsshield.AuditService

	// Identity and CAPool enable the network shield when set directly
	// (otherwise provisioned from the CAS).
	Identity *tls.Certificate
	CAPool   *seccrypto.CA
}

// Container is a running secure ML container.
type Container struct {
	cfg     Config
	rt      runtime
	fs      fsapi.FS
	shield  *netshield.Shield
	casConn *cas.Client
}

// Launch assembles a container.
func Launch(cfg Config) (*Container, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("core: Config.Platform is required")
	}
	if cfg.HostFS == nil {
		return nil, fmt.Errorf("core: Config.HostFS is required")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = cfg.Platform.Params().PhysicalCores
	}

	var rt runtime
	var err error
	switch cfg.Kind {
	case RuntimeSconeHW, RuntimeSconeSIM:
		mode := sgx.ModeHW
		if cfg.Kind == RuntimeSconeSIM {
			mode = sgx.ModeSIM
		}
		rt, err = scone.Launch(scone.Config{
			Platform:       cfg.Platform,
			Mode:           mode,
			Image:          cfg.Image,
			HostFS:         cfg.HostFS,
			EnclaveThreads: cfg.Threads,
		})
	case RuntimeGraphene:
		rt, err = graphene.Launch(graphene.Config{
			Platform: cfg.Platform,
			Image:    cfg.Image,
			HostFS:   cfg.HostFS,
			Threads:  cfg.Threads,
		})
	case RuntimeNativeGlibc, RuntimeNativeMusl:
		libc := nativert.Glibc
		if cfg.Kind == RuntimeNativeMusl {
			libc = nativert.Musl
		}
		rt, err = nativert.Launch(nativert.Config{
			Params:  cfg.Platform.Params(),
			Clock:   cfg.Platform.Clock(),
			Libc:    libc,
			HostFS:  cfg.HostFS,
			Threads: cfg.Threads,
		})
	default:
		return nil, fmt.Errorf("core: invalid runtime kind %d", int(cfg.Kind))
	}
	if err != nil {
		return nil, fmt.Errorf("core: launching %v runtime: %w", cfg.Kind, err)
	}

	c := &Container{cfg: cfg, rt: rt, fs: rt.FS()}
	if len(cfg.FSShieldRules) > 0 && cfg.VolumeKey != nil {
		if err := c.enableFSShield(*cfg.VolumeKey); err != nil {
			rt.Close()
			return nil, err
		}
	}
	return c, nil
}

// enableFSShield layers the file-system shield over the runtime FS.
func (c *Container) enableFSShield(key seccrypto.Key) error {
	var meter fsshield.Meter
	if e := c.rt.Enclave(); e != nil {
		meter = fsshield.EnclaveMeter{Enclave: e}
	}
	s, err := fsshield.New(fsshield.Config{
		Inner:     c.rt.FS(),
		VolumeKey: key,
		Rules:     c.cfg.FSShieldRules,
		Meter:     meter,
		Audit:     c.cfg.Audit,
	})
	if err != nil {
		return fmt.Errorf("core: enabling file-system shield: %w", err)
	}
	c.fs = s
	return nil
}

// Kind returns the container's runtime kind.
func (c *Container) Kind() RuntimeKind { return c.cfg.Kind }

// Name returns the underlying runtime name.
func (c *Container) Name() string { return c.rt.Name() }

// Enclave returns the container's enclave (nil for native kinds).
func (c *Container) Enclave() *sgx.Enclave { return c.rt.Enclave() }

// Clock returns the container's virtual clock.
func (c *Container) Clock() *vtime.Clock { return c.cfg.Platform.Clock() }

// Platform returns the platform hosting the container.
func (c *Container) Platform() *sgx.Platform { return c.cfg.Platform }

// Params returns the platform's cost-model parameters.
func (c *Container) Params() sgx.Params { return c.cfg.Platform.Params() }

// EnclaveStats snapshots the enclave's hardware counters (transitions,
// page faults, traffic); the zero value is returned for native kinds.
func (c *Container) EnclaveStats() sgx.StatsSnapshot {
	if e := c.rt.Enclave(); e != nil {
		return e.Stats()
	}
	return sgx.StatsSnapshot{}
}

// FS returns the container's file-system view (shielded when enabled).
func (c *Container) FS() fsapi.FS { return c.fs }

// Device returns a compute device with the given thread count (0 uses
// the container default).
func (c *Container) Device(threads int) device.Device {
	if threads <= 0 {
		threads = c.cfg.Threads
	}
	return c.rt.Device(threads)
}

// Provision attests the container to a CAS session and installs the
// provisioned material: the named volume key for the file-system shield
// and the TLS identity for the network shield. It returns the full
// provision for application secrets, plus the attestation timing
// (Figure 4's subject).
func (c *Container) Provision(client *cas.Client, session, volume string) (*cas.Provision, cas.AttestTiming, error) {
	prov, timing, err := client.Attest(session)
	if err != nil {
		return nil, timing, err
	}
	c.casConn = client
	if len(c.cfg.FSShieldRules) > 0 {
		raw, ok := prov.Volumes[volume]
		if !ok {
			return nil, timing, fmt.Errorf("core: session %q provisions no volume %q", session, volume)
		}
		if len(raw) != seccrypto.KeySize {
			return nil, timing, fmt.Errorf("core: volume key %q has %d bytes", volume, len(raw))
		}
		var key seccrypto.Key
		copy(key[:], raw)
		if c.cfg.Audit == nil {
			c.cfg.Audit = client.AuditClient()
		}
		if err := c.enableFSShield(key); err != nil {
			return nil, timing, err
		}
	}
	if prov.Identity != nil {
		shield, err := netshield.New(netshield.Config{
			Params:            c.cfg.Platform.Params(),
			Clock:             c.Clock(),
			Identity:          *prov.Identity,
			RootCAs:           prov.CAPool,
			RequireClientCert: true,
		})
		if err != nil {
			return nil, timing, err
		}
		c.shield = shield
	}
	return prov, timing, nil
}

// UseIdentity installs a TLS identity directly (tests and local setups
// that do not go through a CAS).
func (c *Container) UseIdentity(identity tls.Certificate, ca *seccrypto.CA, requireClientCert bool) error {
	shield, err := netshield.New(netshield.Config{
		Params:            c.cfg.Platform.Params(),
		Clock:             c.Clock(),
		Identity:          identity,
		RootCAs:           ca.CertPool(),
		RequireClientCert: requireClientCert,
	})
	if err != nil {
		return err
	}
	c.shield = shield
	return nil
}

// Dial opens a connection through the runtime, wrapped by the network
// shield when provisioned.
func (c *Container) Dial(network, addr, serverName string) (net.Conn, error) {
	if c.shield != nil {
		return c.shield.Dial(c.rt.Dial, network, addr, serverName)
	}
	return c.rt.Dial(network, addr)
}

// Listen opens a listener through the runtime, wrapped by the network
// shield when provisioned.
func (c *Container) Listen(network, addr string) (net.Listener, error) {
	ln, err := c.rt.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	if c.shield != nil {
		return c.shield.WrapListener(ln), nil
	}
	return ln, nil
}

// NetShielded reports whether the network shield is active.
func (c *Container) NetShielded() bool { return c.shield != nil }

// Close shuts the container down.
func (c *Container) Close() error {
	return c.rt.Close()
}

// TrustedKeys builds the platform trust store a cas.Client needs from a
// set of platforms (convenience for wiring clusters).
func TrustedKeys(platforms ...*sgx.Platform) map[string]*ecdsa.PublicKey {
	out := make(map[string]*ecdsa.PublicKey, len(platforms))
	for _, p := range platforms {
		out[p.Name()] = p.AttestationKey()
	}
	return out
}
