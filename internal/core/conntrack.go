package core

import (
	"net"
	"sync"
)

// ConnTracker records a server's live connections so shutdown can close
// them and unpark handlers blocked in reads. Track refuses connections
// once CloseAll ran, so shutdown cannot race a fresh accept. Shared by
// the single-model inference service and the serving gateway.
type ConnTracker struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Track registers a live connection; it reports false (and the caller
// must close the connection) once CloseAll ran.
func (t *ConnTracker) Track(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	if t.conns == nil {
		t.conns = make(map[net.Conn]struct{})
	}
	t.conns[conn] = struct{}{}
	return true
}

// Untrack removes and closes a connection.
func (t *ConnTracker) Untrack(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
	conn.Close()
}

// CloseAll closes every tracked connection and refuses future Tracks.
func (t *ConnTracker) CloseAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for conn := range t.conns {
		conn.Close()
	}
	t.conns = nil
}
