package fsshield

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/fsapi/fstest"
	"github.com/securetf/securetf/internal/seccrypto"
)

func newTestShield(t *testing.T, inner fsapi.FS, opts ...func(*Config)) *Shield {
	t.Helper()
	key, err := seccrypto.NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Inner:     inner,
		VolumeKey: key,
		Rules: []Rule{
			{Prefix: "secret/", Level: LevelEncrypted},
			{Prefix: "signed/", Level: LevelAuthenticated},
			{Prefix: "plain/", Level: LevelPassthrough},
		},
		ChunkSize: 256, // small chunks exercise multi-chunk paths
	}
	for _, o := range opts {
		o(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing inner FS accepted")
	}
	if _, err := New(Config{Inner: fsapi.NewMem(), Rules: []Rule{{Prefix: "x", Level: Level(99)}}}); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestLevelForLongestPrefixWins(t *testing.T) {
	s := newTestShield(t, fsapi.NewMem(), func(c *Config) {
		c.Rules = []Rule{
			{Prefix: "data/", Level: LevelAuthenticated},
			{Prefix: "data/secret/", Level: LevelEncrypted},
		}
	})
	if got := s.LevelFor("data/x"); got != LevelAuthenticated {
		t.Fatalf("LevelFor(data/x) = %v", got)
	}
	if got := s.LevelFor("data/secret/x"); got != LevelEncrypted {
		t.Fatalf("LevelFor(data/secret/x) = %v", got)
	}
	if got := s.LevelFor("elsewhere"); got != LevelPassthrough {
		t.Fatalf("LevelFor(elsewhere) = %v", got)
	}
}

func TestRoundTripAllLevels(t *testing.T) {
	for _, path := range []string{"secret/model.bin", "signed/model.bin", "plain/model.bin"} {
		inner := fsapi.NewMem()
		s := newTestShield(t, inner)
		data := bytes.Repeat([]byte("0123456789abcdef"), 100) // 1600 B > 6 chunks
		if err := fsapi.WriteFile(s, path, data); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		got, err := fsapi.ReadFile(s, path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: round trip mismatch", path)
		}
	}
}

func TestCiphertextActuallyEncrypted(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	plaintext := bytes.Repeat([]byte("SENSITIVE"), 200)
	if err := fsapi.WriteFile(s, "secret/f", plaintext); err != nil {
		t.Fatal(err)
	}
	raw, err := fsapi.ReadFile(inner, "secret/f")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("SENSITIVE")) {
		t.Fatal("plaintext visible on the untrusted file system")
	}
}

func TestAuthenticatedLevelLeavesPlaintextReadable(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	if err := fsapi.WriteFile(s, "signed/f", []byte("PUBLIC-BUT-SIGNED")); err != nil {
		t.Fatal(err)
	}
	raw, err := fsapi.ReadFile(inner, "signed/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("PUBLIC-BUT-SIGNED")) {
		t.Fatal("authenticate-only file should keep plaintext visible")
	}
}

func TestTamperDetectionData(t *testing.T) {
	for _, path := range []string{"secret/f", "signed/f"} {
		inner := fsapi.NewMem()
		s := newTestShield(t, inner)
		if err := fsapi.WriteFile(s, path, bytes.Repeat([]byte("x"), 1000)); err != nil {
			t.Fatal(err)
		}
		// Flip one byte of the stored data.
		raw, _ := fsapi.ReadFile(inner, path)
		raw[len(raw)/2] ^= 0x01
		if err := fsapi.WriteFile(inner, path, raw); err != nil {
			t.Fatal(err)
		}
		if _, err := fsapi.ReadFile(s, path); !errors.Is(err, ErrTampered) {
			t.Fatalf("%s: err = %v, want ErrTampered", path, err)
		}
	}
}

func TestTamperDetectionMetadata(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	if err := fsapi.WriteFile(s, "secret/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	raw, _ := fsapi.ReadFile(inner, "secret/f"+metaSuffix)
	raw[len(raw)-1] ^= 0x01
	if err := fsapi.WriteFile(inner, "secret/f"+metaSuffix, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := fsapi.ReadFile(s, "secret/f"); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
}

func TestMissingMetadataIsTampering(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	if err := fsapi.WriteFile(s, "secret/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := inner.Remove("secret/f" + metaSuffix); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("secret/f"); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
}

func TestChunkSwapDetected(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	// Two chunks of identical plaintext: swapping their ciphertexts must
	// still be detected because the chunk index is in the AAD.
	data := append(bytes.Repeat([]byte("A"), 256), bytes.Repeat([]byte("A"), 256)...)
	if err := fsapi.WriteFile(s, "secret/f", data); err != nil {
		t.Fatal(err)
	}
	raw, _ := fsapi.ReadFile(inner, "secret/f")
	slot := 256 + 16
	chunk0 := append([]byte(nil), raw[:slot]...)
	copy(raw[:slot], raw[slot:2*slot])
	copy(raw[slot:2*slot], chunk0)
	if err := fsapi.WriteFile(inner, "secret/f", raw); err != nil {
		t.Fatal(err)
	}
	if _, err := fsapi.ReadFile(s, "secret/f"); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered for swapped chunks", err)
	}
}

func TestChunkReplayOldVersionDetected(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	if err := fsapi.WriteFile(s, "secret/f", bytes.Repeat([]byte("v1"), 128)); err != nil {
		t.Fatal(err)
	}
	oldData, _ := fsapi.ReadFile(inner, "secret/f")

	// Rewrite the file (epoch and counters advance).
	if err := fsapi.WriteFile(s, "secret/f", bytes.Repeat([]byte("v2"), 128)); err != nil {
		t.Fatal(err)
	}
	// Replay only the old data file, keeping the new metadata.
	if err := fsapi.WriteFile(inner, "secret/f", oldData); err != nil {
		t.Fatal(err)
	}
	if _, err := fsapi.ReadFile(s, "secret/f"); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered for replayed chunk", err)
	}
}

func TestRollbackDetectedWithAudit(t *testing.T) {
	inner := fsapi.NewMem()
	audit := NewLocalAudit()
	s := newTestShield(t, inner, func(c *Config) { c.Audit = audit })

	if err := fsapi.WriteFile(s, "secret/f", []byte("version-1")); err != nil {
		t.Fatal(err)
	}
	oldData, _ := fsapi.ReadFile(inner, "secret/f")
	oldMeta, _ := fsapi.ReadFile(inner, "secret/f"+metaSuffix)

	if err := fsapi.WriteFile(s, "secret/f", []byte("version-2")); err != nil {
		t.Fatal(err)
	}

	// Roll back BOTH files to the old consistent snapshot: only the audit
	// service can catch this.
	if err := fsapi.WriteFile(inner, "secret/f", oldData); err != nil {
		t.Fatal(err)
	}
	if err := fsapi.WriteFile(inner, "secret/f"+metaSuffix, oldMeta); err != nil {
		t.Fatal(err)
	}
	if _, err := fsapi.ReadFile(s, "secret/f"); !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v, want ErrRolledBack", err)
	}
}

func TestRollbackUndetectedWithoutAudit(t *testing.T) {
	// Documents the security boundary: without the audit service a full
	// consistent-snapshot rollback is NOT detectable (this is why the CAS
	// freshness service exists).
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	if err := fsapi.WriteFile(s, "secret/f", []byte("version-1")); err != nil {
		t.Fatal(err)
	}
	oldData, _ := fsapi.ReadFile(inner, "secret/f")
	oldMeta, _ := fsapi.ReadFile(inner, "secret/f"+metaSuffix)
	if err := fsapi.WriteFile(s, "secret/f", []byte("version-2")); err != nil {
		t.Fatal(err)
	}
	fsapi.WriteFile(inner, "secret/f", oldData)
	fsapi.WriteFile(inner, "secret/f"+metaSuffix, oldMeta)
	got, err := fsapi.ReadFile(s, "secret/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "version-1" {
		t.Fatalf("got %q", got)
	}
}

func TestTruncationAttackDetected(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	if err := fsapi.WriteFile(s, "secret/f", bytes.Repeat([]byte("z"), 1024)); err != nil {
		t.Fatal(err)
	}
	// The host silently truncates the data file.
	f, err := inner.Open("secret/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := fsapi.ReadFile(s, "secret/f"); !errors.Is(err, ErrIago) {
		t.Fatalf("err = %v, want ErrIago for truncated data", err)
	}
}

func TestStatReportsLogicalSize(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	if err := fsapi.WriteFile(s, "secret/f", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	fi, err := s.Stat("secret/f")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 1000 {
		t.Fatalf("logical size = %d, want 1000", fi.Size)
	}
	rawFi, err := inner.Stat("secret/f")
	if err != nil {
		t.Fatal(err)
	}
	if rawFi.Size <= 1000 {
		t.Fatalf("stored size = %d, want > 1000 (tags)", rawFi.Size)
	}
}

func TestListHidesMetadata(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	if err := fsapi.WriteFile(s, "secret/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	names, err := s.List("secret")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "f" {
		t.Fatalf("List = %v, want [f]", names)
	}
}

func TestRenameReencrypts(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	if err := fsapi.WriteFile(s, "secret/a", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("secret/a", "secret/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat("secret/a"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("old name still present")
	}
	got, err := fsapi.ReadFile(s, "secret/b")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("got %q", got)
	}
}

func TestRandomAccessReadWrite(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	f, err := s.Create("secret/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("world"), 600); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := s.Open("secret/f")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	buf := make([]byte, 5)
	if _, err := g.ReadAt(buf, 600); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("ReadAt(600) = %q", buf)
	}
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("ReadAt(0) = %q", buf)
	}
	// The zero-filled gap must read as zeros.
	gap := make([]byte, 10)
	if _, err := g.ReadAt(gap, 300); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gap, make([]byte, 10)) {
		t.Fatalf("gap = %v, want zeros", gap)
	}
}

func TestTruncateShrinkGrow(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	f, err := s.Create("secret/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte("abcd"), 200)); err != nil { // 800 B
		t.Fatal(err)
	}
	if err := f.Truncate(300); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(500); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fsapi.ReadFile(s, "secret/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("len = %d, want 500", len(got))
	}
	want := append(bytes.Repeat([]byte("abcd"), 75), make([]byte, 200)...)
	if !bytes.Equal(got, want) {
		t.Fatal("content after shrink+grow mismatch")
	}
}

func TestNoNonceReuseAfterShrinkGrow(t *testing.T) {
	// Shrinking then growing a file must produce different ciphertext for
	// the re-written chunk even with identical plaintext (counters are
	// high-water marks).
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	payload := bytes.Repeat([]byte("p"), 256)

	write := func() []byte {
		if err := fsapi.WriteFile(s, "secret/f", payload); err != nil {
			t.Fatal(err)
		}
		raw, err := fsapi.ReadFile(inner, "secret/f")
		if err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), raw...)
	}
	first := write()
	second := write()
	if bytes.Equal(first, second) {
		t.Fatal("identical ciphertext for rewritten chunk: nonce reuse")
	}
}

func TestWrongVolumeKeyFails(t *testing.T) {
	inner := fsapi.NewMem()
	s1 := newTestShield(t, inner)
	if err := fsapi.WriteFile(s1, "secret/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	s2 := newTestShield(t, inner) // different random volume key
	if _, err := fsapi.ReadFile(s2, "secret/f"); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered with wrong key", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		n := int(seed%4096) + 1
		if n < 0 {
			n = -n + 1
		}
		data := make([]byte, n)
		rng.Read(data)
		if err := fsapi.WriteFile(s, "secret/prop", data); err != nil {
			return false
		}
		got, err := fsapi.ReadFile(s, "secret/prop")
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseWriteProperty(t *testing.T) {
	// Arbitrary WriteAt sequences must equal the same writes applied to a
	// plain in-memory buffer.
	type op struct {
		Off  uint16
		Data []byte
	}
	inner := fsapi.NewMem()
	s := newTestShield(t, inner)
	check := func(ops []op) bool {
		_ = s.Remove("secret/sparse")
		f, err := s.Create("secret/sparse")
		if err != nil {
			return false
		}
		var ref []byte
		for _, o := range ops {
			off := int(o.Off % 2048)
			if len(o.Data) > 512 {
				o.Data = o.Data[:512]
			}
			if _, err := f.WriteAt(o.Data, int64(off)); err != nil {
				return false
			}
			if need := off + len(o.Data); need > len(ref) {
				grown := make([]byte, need)
				copy(grown, ref)
				ref = grown
			}
			copy(ref[off:], o.Data)
		}
		if err := f.Close(); err != nil {
			return false
		}
		got, err := fsapi.ReadFile(s, "secret/sparse")
		if err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAuditEpochMonotonic(t *testing.T) {
	a := NewLocalAudit()
	var root [32]byte
	if err := a.AdvanceRoot("f", 1, root); err != nil {
		t.Fatal(err)
	}
	if err := a.AdvanceRoot("f", 1, root); err == nil {
		t.Fatal("repeated epoch accepted")
	}
	if err := a.AdvanceRoot("f", 0, root); err == nil {
		t.Fatal("regressing epoch accepted")
	}
	if err := a.AdvanceRoot("f", 5, root); err != nil {
		t.Fatal(err)
	}
	epoch, _, ok, err := a.CheckRoot("f")
	if err != nil || !ok || epoch != 5 {
		t.Fatalf("CheckRoot = %d %v %v", epoch, ok, err)
	}
}

func TestRecreateCannotReplayEpoch(t *testing.T) {
	inner := fsapi.NewMem()
	audit := NewLocalAudit()
	s := newTestShield(t, inner, func(c *Config) { c.Audit = audit })
	if err := fsapi.WriteFile(s, "secret/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := fsapi.WriteFile(s, "secret/f", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Recreating continues the epoch sequence: the audit service must not
	// see a regression.
	if err := fsapi.WriteFile(s, "secret/f", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	got, err := fsapi.ReadFile(s, "secret/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v3" {
		t.Fatalf("got %q", got)
	}
}

func TestFSConformanceUnderEveryLevel(t *testing.T) {
	// The shield must be indistinguishable from a plain file system to
	// the application (the transparency goal), at every protection
	// level — the conformance suite writes under unruled paths too.
	for _, prefix := range []string{"secret/", "signed/", "plain/", ""} {
		t.Run("prefix="+prefix, func(t *testing.T) {
			shield := newTestShield(t, fsapi.NewMem())
			fstest.Conformance(t, prefixFS{inner: shield, prefix: prefix})
		})
	}
}

// prefixFS maps the conformance suite's paths under a shield prefix.
type prefixFS struct {
	inner  fsapi.FS
	prefix string
}

func (p prefixFS) Open(name string) (fsapi.File, error) {
	f, err := p.inner.Open(p.prefix + name)
	if err != nil {
		return nil, err
	}
	return prefixFile{File: f, prefix: p.prefix}, nil
}

func (p prefixFS) Create(name string) (fsapi.File, error) {
	f, err := p.inner.Create(p.prefix + name)
	if err != nil {
		return nil, err
	}
	return prefixFile{File: f, prefix: p.prefix}, nil
}

// prefixFile strips the mapping prefix from Name so the conformance
// suite sees the paths it opened.
type prefixFile struct {
	fsapi.File
	prefix string
}

func (f prefixFile) Name() string           { return strings.TrimPrefix(f.File.Name(), f.prefix) }
func (p prefixFS) Remove(name string) error { return p.inner.Remove(p.prefix + name) }
func (p prefixFS) Rename(oldName, newName string) error {
	return p.inner.Rename(p.prefix+oldName, p.prefix+newName)
}
func (p prefixFS) Stat(name string) (fsapi.FileInfo, error) { return p.inner.Stat(p.prefix + name) }
func (p prefixFS) List(dir string) ([]string, error)        { return p.inner.List(p.prefix + dir) }
func (p prefixFS) MkdirAll(dir string) error                { return p.inner.MkdirAll(p.prefix + dir) }
