package fsshield

import (
	"fmt"
	"sync"

	"github.com/securetf/securetf/internal/sgx"
)

// LocalAudit is an in-process AuditService: a monotonic epoch and root per
// path. The production deployment uses the CAS audit service instead; the
// semantics are identical.
type LocalAudit struct {
	mu    sync.Mutex
	roots map[string]auditEntry
}

type auditEntry struct {
	epoch uint64
	root  [32]byte
}

var _ AuditService = (*LocalAudit)(nil)

// NewLocalAudit creates an empty audit service.
func NewLocalAudit() *LocalAudit {
	return &LocalAudit{roots: make(map[string]auditEntry)}
}

// AdvanceRoot implements AuditService. Epochs must strictly increase.
func (a *LocalAudit) AdvanceRoot(path string, epoch uint64, root [32]byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cur, ok := a.roots[path]; ok && epoch <= cur.epoch {
		return fmt.Errorf("fsshield: audit epoch for %q must exceed %d, got %d", path, cur.epoch, epoch)
	}
	a.roots[path] = auditEntry{epoch: epoch, root: root}
	return nil
}

// CheckRoot implements AuditService.
func (a *LocalAudit) CheckRoot(path string) (uint64, [32]byte, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e, ok := a.roots[path]
	return e.epoch, e.root, ok, nil
}

// EnclaveMeter charges shield crypto work to an enclave.
type EnclaveMeter struct {
	Enclave *sgx.Enclave
}

var _ Meter = EnclaveMeter{}

// Crypto implements Meter.
func (m EnclaveMeter) Crypto(n int64) {
	if m.Enclave != nil {
		m.Enclave.CryptoOp(n)
	}
}
