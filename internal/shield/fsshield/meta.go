package fsshield

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/securetf/securetf/internal/seccrypto"
)

// metadata is the in-enclave record for one protected file: logical size,
// the file epoch (bumped on every flush), a random per-incarnation
// generation salt, and per-chunk write counters. Counters feed chunk
// nonces/AADs so every rewrite of a chunk produces a distinct ciphertext
// that cannot be swapped with an older one; the generation salt is folded
// into the chunk key so recreating a file can never reuse a (key, nonce)
// pair from a previous incarnation, and old-incarnation ciphertexts fail
// authentication outright.
type metadata struct {
	Level      Level
	ChunkSize  uint32
	FileSize   int64
	Epoch      uint64
	Generation [16]byte
	Counters   []uint64 // one per chunk
}

func newMetadata(level Level, chunkSize int) (*metadata, error) {
	m := &metadata{Level: level, ChunkSize: uint32(chunkSize)}
	if _, err := rand.Read(m.Generation[:]); err != nil {
		return nil, fmt.Errorf("fsshield: generating file generation: %w", err)
	}
	return m, nil
}

func (m *metadata) numChunks() int {
	if m.FileSize == 0 {
		return 0
	}
	return int((m.FileSize + int64(m.ChunkSize) - 1) / int64(m.ChunkSize))
}

// ensureChunks grows the counter table to n chunks.
func (m *metadata) ensureChunks(n int) {
	for len(m.Counters) < n {
		m.Counters = append(m.Counters, 0)
	}
}

const (
	metaMagic   = "SFM1"
	metaAADTag  = "fsshield-meta-v1"
	chunkAADTag = "fsshield-chunk-v1"
)

// encodeMetadata serializes and protects the metadata. The epoch travels
// in the clear (the loader needs it for the AAD) but is bound by the
// authentication tag, and for encrypt-level files the body is encrypted.
func encodeMetadata(m *metadata, key seccrypto.Key, path string) ([]byte, error) {
	var body bytes.Buffer
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], m.ChunkSize)
	body.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:], uint64(m.FileSize))
	body.Write(scratch[:])
	body.Write(m.Generation[:])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(m.Counters)))
	body.Write(scratch[:4])
	for _, c := range m.Counters {
		binary.LittleEndian.PutUint64(scratch[:], c)
		body.Write(scratch[:])
	}

	aad := metaAAD(path, m.Level, m.Epoch)
	var payload []byte
	switch m.Level {
	case LevelEncrypted:
		sealed, err := seccrypto.Seal(key, body.Bytes(), aad)
		if err != nil {
			return nil, fmt.Errorf("fsshield: sealing metadata for %q: %w", path, err)
		}
		payload = sealed
	case LevelAuthenticated:
		mac := hmac.New(sha256.New, key[:])
		mac.Write(aad)
		mac.Write(body.Bytes())
		payload = append(body.Bytes(), mac.Sum(nil)...)
	default:
		return nil, fmt.Errorf("fsshield: cannot encode metadata at level %v", m.Level)
	}

	out := make([]byte, 0, 4+1+8+4+len(payload))
	out = append(out, metaMagic...)
	out = append(out, byte(m.Level))
	binary.LittleEndian.PutUint64(scratch[:], m.Epoch)
	out = append(out, scratch[:]...)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(payload)))
	out = append(out, scratch[:4]...)
	out = append(out, payload...)
	return out, nil
}

// decodeMetadata authenticates and parses a metadata file.
func decodeMetadata(raw []byte, key seccrypto.Key, path string, wantLevel Level) (*metadata, error) {
	if len(raw) < 4+1+8+4 {
		return nil, fmt.Errorf("%w: metadata for %q truncated", ErrTampered, path)
	}
	if string(raw[:4]) != metaMagic {
		return nil, fmt.Errorf("%w: metadata for %q has bad magic", ErrTampered, path)
	}
	level := Level(raw[4])
	if level != wantLevel {
		return nil, fmt.Errorf("%w: metadata for %q declares level %v, policy requires %v", ErrTampered, path, level, wantLevel)
	}
	epoch := binary.LittleEndian.Uint64(raw[5:13])
	plen := binary.LittleEndian.Uint32(raw[13:17])
	payload := raw[17:]
	if int(plen) != len(payload) {
		return nil, fmt.Errorf("%w: metadata for %q length mismatch", ErrIago, path)
	}

	aad := metaAAD(path, level, epoch)
	var body []byte
	switch level {
	case LevelEncrypted:
		pt, err := seccrypto.Open(key, payload, aad)
		if err != nil {
			return nil, fmt.Errorf("%w: metadata for %q failed authentication", ErrTampered, path)
		}
		body = pt
	case LevelAuthenticated:
		if len(payload) < sha256.Size {
			return nil, fmt.Errorf("%w: metadata for %q too short for MAC", ErrTampered, path)
		}
		body = payload[:len(payload)-sha256.Size]
		tag := payload[len(payload)-sha256.Size:]
		mac := hmac.New(sha256.New, key[:])
		mac.Write(aad)
		mac.Write(body)
		if !hmac.Equal(tag, mac.Sum(nil)) {
			return nil, fmt.Errorf("%w: metadata for %q failed authentication", ErrTampered, path)
		}
	default:
		return nil, fmt.Errorf("%w: metadata for %q has invalid level", ErrTampered, path)
	}

	const fixed = 4 + 8 + 16 + 4
	if len(body) < fixed {
		return nil, fmt.Errorf("%w: metadata body for %q truncated", ErrTampered, path)
	}
	m := &metadata{Level: level, Epoch: epoch}
	m.ChunkSize = binary.LittleEndian.Uint32(body[0:4])
	m.FileSize = int64(binary.LittleEndian.Uint64(body[4:12]))
	copy(m.Generation[:], body[12:28])
	n := binary.LittleEndian.Uint32(body[28:32])
	if m.ChunkSize == 0 || m.FileSize < 0 {
		return nil, fmt.Errorf("%w: metadata for %q has invalid geometry", ErrIago, path)
	}
	if len(body) != fixed+int(n)*8 {
		return nil, fmt.Errorf("%w: metadata for %q counter table mismatch", ErrIago, path)
	}
	// The counter table may exceed the current chunk count (counters are
	// high-water marks across truncations) but never undershoot it.
	want := (m.FileSize + int64(m.ChunkSize) - 1) / int64(m.ChunkSize)
	if int64(n) < want {
		return nil, fmt.Errorf("%w: metadata for %q declares %d chunks for %d bytes", ErrIago, path, n, m.FileSize)
	}
	m.Counters = make([]uint64, n)
	for i := range m.Counters {
		m.Counters[i] = binary.LittleEndian.Uint64(body[fixed+i*8:])
	}
	return m, nil
}

func metaAAD(path string, level Level, epoch uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString(metaAADTag)
	buf.WriteByte(0)
	buf.WriteString(path)
	buf.WriteByte(0)
	buf.WriteByte(byte(level))
	var e [8]byte
	binary.LittleEndian.PutUint64(e[:], epoch)
	buf.Write(e[:])
	return buf.Bytes()
}

// chunkAAD binds a chunk ciphertext to its file, index and write counter.
func chunkAAD(path string, index int64, counter uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString(chunkAADTag)
	buf.WriteByte(0)
	buf.WriteString(path)
	buf.WriteByte(0)
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(index))
	binary.LittleEndian.PutUint64(b[8:16], counter)
	buf.Write(b[:])
	return buf.Bytes()
}

// chunkNonce derives a deterministic GCM nonce from chunk index and write
// counter. The pair is unique per file key for the life of the file, so
// nonces never repeat under a key.
func chunkNonce(index int64, counter uint64) [12]byte {
	var n [12]byte
	binary.LittleEndian.PutUint32(n[0:4], uint32(uint64(index)))
	binary.LittleEndian.PutUint64(n[4:12], counter)
	return n
}
