package fsshield

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"io"

	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/seccrypto"
)

// shieldFile is an open protected file. Chunks are decrypted on first
// access and cached in (enclave) memory; dirty chunks are re-encrypted
// with bumped write counters and flushed on Close.
//
// Like os.File, a shieldFile must not be used concurrently.
type shieldFile struct {
	shield *Shield
	path   string
	level  Level
	data   fsapi.File
	meta   *metadata
	key    seccrypto.Key

	cache  map[int64][]byte
	dirty  map[int64]bool
	off    int64
	closed bool
}

var _ fsapi.File = (*shieldFile)(nil)

func newShieldFile(s *Shield, path string, level Level, data fsapi.File, meta *metadata) *shieldFile {
	return &shieldFile{
		shield: s,
		path:   path,
		level:  level,
		data:   data,
		meta:   meta,
		key:    s.chunkKey(path, meta.Generation),
		cache:  make(map[int64][]byte),
		dirty:  make(map[int64]bool),
	}
}

// overhead is the per-chunk storage overhead for this file's level.
func (f *shieldFile) overhead() int64 {
	if f.level == LevelEncrypted {
		return 16 // GCM tag
	}
	return sha256.Size // HMAC tag
}

func (f *shieldFile) chunkSize() int64 { return int64(f.meta.ChunkSize) }
func (f *shieldFile) slotSize() int64  { return f.chunkSize() + f.overhead() }

// plainLen returns the plaintext length of chunk i given the logical file
// size.
func (f *shieldFile) plainLen(i int64) int64 {
	start := i * f.chunkSize()
	if start >= f.meta.FileSize {
		return 0
	}
	n := f.meta.FileSize - start
	if n > f.chunkSize() {
		n = f.chunkSize()
	}
	return n
}

// loadChunk returns the plaintext of chunk i, reading and verifying it
// from the untrusted file if not cached.
func (f *shieldFile) loadChunk(i int64) ([]byte, error) {
	if c, ok := f.cache[i]; ok {
		return c, nil
	}
	plain := f.plainLen(i)
	if plain == 0 {
		buf := make([]byte, 0, f.chunkSize())
		f.cache[i] = buf
		return buf, nil
	}
	stored := make([]byte, plain+f.overhead())
	n, err := f.data.ReadAt(stored, i*f.slotSize())
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("fsshield: reading chunk %d of %q: %w", i, f.path, err)
	}
	if int64(n) != int64(len(stored)) {
		// Iago check: the host returned fewer bytes than the
		// authenticated metadata says must exist.
		return nil, fmt.Errorf("%w: chunk %d of %q is %d bytes, metadata requires %d", ErrIago, i, f.path, n, len(stored))
	}
	f.shield.chargeCrypto(int64(len(stored)))

	counter := f.meta.Counters[i]
	aad := chunkAAD(f.path, i, counter)
	var pt []byte
	switch f.level {
	case LevelEncrypted:
		var err error
		pt, err = seccrypto.OpenDeterministic(f.key, chunkNonce(i, counter), stored, aad)
		if err != nil {
			return nil, fmt.Errorf("%w: chunk %d of %q failed authentication", ErrTampered, i, f.path)
		}
	case LevelAuthenticated:
		body := stored[:plain]
		tag := stored[plain:]
		mac := hmac.New(sha256.New, f.key[:])
		mac.Write(aad)
		mac.Write(body)
		if !hmac.Equal(tag, mac.Sum(nil)) {
			return nil, fmt.Errorf("%w: chunk %d of %q failed authentication", ErrTampered, i, f.path)
		}
		pt = append([]byte(nil), body...)
	default:
		return nil, fmt.Errorf("fsshield: invalid level %v", f.level)
	}
	f.cache[i] = pt
	return pt, nil
}

// ReadAt implements io.ReaderAt over the plaintext view.
func (f *shieldFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("fsshield: %q is closed", f.path)
	}
	if off < 0 {
		return 0, fmt.Errorf("fsshield: negative offset")
	}
	total := 0
	for total < len(p) && off < f.meta.FileSize {
		i := off / f.chunkSize()
		chunk, err := f.loadChunk(i)
		if err != nil {
			return total, err
		}
		rel := off - i*f.chunkSize()
		if rel >= int64(len(chunk)) {
			break
		}
		n := copy(p[total:], chunk[rel:])
		total += n
		off += int64(n)
	}
	if total < len(p) {
		return total, io.EOF
	}
	return total, nil
}

// WriteAt implements io.WriterAt over the plaintext view, growing the
// file (zero-filled) as needed.
func (f *shieldFile) WriteAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("fsshield: %q is closed", f.path)
	}
	if off < 0 {
		return 0, fmt.Errorf("fsshield: negative offset")
	}
	// Writing past EOF zero-fills the gap first so every chunk up to the
	// write is materialized and flushed.
	if off > f.meta.FileSize {
		if err := f.Truncate(off); err != nil {
			return 0, err
		}
	}
	total := 0
	for total < len(p) {
		i := (off + int64(total)) / f.chunkSize()
		chunk, err := f.loadChunk(i)
		if err != nil {
			return total, err
		}
		rel := off + int64(total) - i*f.chunkSize()
		end := rel + int64(len(p)-total)
		if end > f.chunkSize() {
			end = f.chunkSize()
		}
		// Grow the chunk buffer (zero-filled) to cover [0, end).
		if int64(len(chunk)) < end {
			grown := make([]byte, end)
			copy(grown, chunk)
			chunk = grown
		}
		n := copy(chunk[rel:end], p[total:])
		f.cache[i] = chunk
		f.dirty[i] = true
		total += n
		if newEnd := i*f.chunkSize() + int64(len(chunk)); newEnd > f.meta.FileSize {
			f.meta.FileSize = newEnd
		}
	}
	return total, nil
}

// Read implements io.Reader at the file's seek offset.
func (f *shieldFile) Read(p []byte) (int, error) {
	n, err := f.ReadAt(p, f.off)
	f.off += int64(n)
	if n > 0 && err == io.EOF {
		return n, nil
	}
	return n, err
}

// Write implements io.Writer at the file's seek offset.
func (f *shieldFile) Write(p []byte) (int, error) {
	n, err := f.WriteAt(p, f.off)
	f.off += int64(n)
	return n, err
}

// Seek implements io.Seeker over the plaintext view.
func (f *shieldFile) Seek(off int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		base = f.meta.FileSize
	default:
		return 0, fmt.Errorf("fsshield: invalid whence %d", whence)
	}
	if base+off < 0 {
		return 0, fmt.Errorf("fsshield: negative seek")
	}
	f.off = base + off
	return f.off, nil
}

// Truncate changes the logical size. Shrinking to mid-chunk loads the
// boundary chunk first so its tail can be discarded and re-authenticated.
func (f *shieldFile) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("fsshield: negative truncate size")
	}
	switch {
	case size == f.meta.FileSize:
		return nil
	case size < f.meta.FileSize:
		boundary := size / f.chunkSize()
		rel := size - boundary*f.chunkSize()
		if rel > 0 {
			chunk, err := f.loadChunk(boundary)
			if err != nil {
				return err
			}
			if int64(len(chunk)) > rel {
				f.cache[boundary] = chunk[:rel]
				f.dirty[boundary] = true
			}
		}
		// Drop cache and dirt beyond the new end.
		first := boundary
		if rel > 0 {
			first = boundary + 1
		}
		for i := range f.cache {
			if i >= first {
				delete(f.cache, i)
				delete(f.dirty, i)
			}
		}
		f.meta.FileSize = size
		// Counters are deliberately NOT trimmed: if the file grows again,
		// a re-written chunk must never reuse a (nonce, key) pair from a
		// previous incarnation.
	case size > f.meta.FileSize:
		// Zero-fill by touching the last chunk; intermediate chunks of
		// zeros materialize lazily as all-zero plaintext.
		old := f.meta.FileSize
		f.meta.FileSize = size
		firstNew := old / f.chunkSize()
		lastNew := (size - 1) / f.chunkSize()
		for i := firstNew; i <= lastNew; i++ {
			chunk := f.cache[i]
			want := f.plainLen(i)
			if int64(len(chunk)) < want {
				grown := make([]byte, want)
				copy(grown, chunk)
				f.cache[i] = grown
			}
			f.dirty[i] = true
		}
	}
	return nil
}

// Size returns the logical file size.
func (f *shieldFile) Size() (int64, error) { return f.meta.FileSize, nil }

// Name returns the logical path.
func (f *shieldFile) Name() string { return f.path }

// Close flushes dirty chunks and metadata, advancing the file epoch and
// registering the new root with the audit service.
func (f *shieldFile) Close() error {
	if f.closed {
		return nil
	}
	if err := f.flush(); err != nil {
		return err
	}
	f.closed = true
	return f.data.Close()
}

// flush writes all dirty chunks and the metadata file.
func (f *shieldFile) flush() error {
	n := divCeil(f.meta.FileSize, f.chunkSize())
	f.meta.ensureChunks(int(n))

	for i := int64(0); i < n; i++ {
		if !f.dirty[i] {
			continue
		}
		chunk, err := f.loadChunk(i)
		if err != nil {
			return err
		}
		// Pad the cached buffer to the chunk's full plaintext length.
		if want := f.plainLen(i); int64(len(chunk)) < want {
			grown := make([]byte, want)
			copy(grown, chunk)
			chunk = grown
			f.cache[i] = chunk
		}
		f.meta.Counters[i]++
		counter := f.meta.Counters[i]
		aad := chunkAAD(f.path, i, counter)
		f.shield.chargeCrypto(int64(len(chunk)))

		var stored []byte
		switch f.level {
		case LevelEncrypted:
			ct, err := seccrypto.SealDeterministic(f.key, chunkNonce(i, counter), chunk, aad)
			if err != nil {
				return fmt.Errorf("fsshield: sealing chunk %d of %q: %w", i, f.path, err)
			}
			stored = ct
		case LevelAuthenticated:
			mac := hmac.New(sha256.New, f.key[:])
			mac.Write(aad)
			mac.Write(chunk)
			stored = append(append([]byte(nil), chunk...), mac.Sum(nil)...)
		}
		if _, err := f.data.WriteAt(stored, i*f.slotSize()); err != nil {
			return fmt.Errorf("fsshield: writing chunk %d of %q: %w", i, f.path, err)
		}
		delete(f.dirty, i)
	}

	// Trim the data file to the exact stored size.
	storedSize := int64(0)
	if n > 0 {
		storedSize = (n-1)*f.slotSize() + f.plainLen(n-1) + f.overhead()
	}
	if err := f.data.Truncate(storedSize); err != nil {
		return fmt.Errorf("fsshield: truncating %q: %w", f.path, err)
	}

	f.meta.Epoch++
	raw, err := encodeMetadata(f.meta, f.shield.metaKey(f.path), f.path)
	if err != nil {
		return err
	}
	f.shield.chargeCrypto(int64(len(raw)))
	if err := fsapi.WriteFile(f.shield.cfg.Inner, f.path+metaSuffix, raw); err != nil {
		return fmt.Errorf("fsshield: writing metadata for %q: %w", f.path, err)
	}
	if f.shield.cfg.Audit != nil {
		if err := f.shield.cfg.Audit.AdvanceRoot(f.path, f.meta.Epoch, sha256.Sum256(raw)); err != nil {
			return fmt.Errorf("fsshield: advancing audit root for %q: %w", f.path, err)
		}
	}
	return nil
}

func divCeil(a, b int64) int64 {
	if a == 0 {
		return 0
	}
	return (a + b - 1) / b
}
