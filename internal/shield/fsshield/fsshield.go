// Package fsshield implements secureTF's file-system shield (paper §3.3):
// transparent chunk-level protection of files selected by path-prefix
// policy.
//
// For every protected file the shield stores two objects on the untrusted
// file system: the chunk data file (fixed-size AES-256-GCM chunks, or
// plaintext chunks with HMAC tags for authenticate-only prefixes) and a
// metadata file carrying the logical size, a per-file epoch and the
// per-chunk write counters. Metadata is authenticated (and encrypted for
// encrypt-level files) under a key derived from the volume key and the
// path, and its digest can be registered with an audit service — the CAS
// freshness mechanism — so that rolling the pair back to an older
// consistent snapshot is detected.
//
// The shield also performs the Iago-style sanity checks the paper
// describes: sizes, chunk lengths and counters returned by the untrusted
// OS are validated before use.
package fsshield

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"

	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/seccrypto"
)

// Level is the protection level applied to a path prefix.
type Level int

const (
	// LevelPassthrough leaves files untouched.
	LevelPassthrough Level = iota + 1
	// LevelAuthenticated stores plaintext chunks with per-chunk MACs:
	// tampering is detected but contents are readable.
	LevelAuthenticated
	// LevelEncrypted stores AES-256-GCM chunks: confidentiality and
	// integrity.
	LevelEncrypted
)

// String names the level for logs.
func (l Level) String() string {
	switch l {
	case LevelPassthrough:
		return "passthrough"
	case LevelAuthenticated:
		return "authenticated"
	case LevelEncrypted:
		return "encrypted"
	default:
		return "invalid"
	}
}

// Rule maps a path prefix to a protection level. The longest matching
// prefix wins.
type Rule struct {
	Prefix string
	Level  Level
}

// Shield errors.
var (
	// ErrTampered reports failed authentication of file contents or
	// metadata.
	ErrTampered = errors.New("fsshield: file tampered")
	// ErrRolledBack reports a file whose epoch is older than the audit
	// service's record — a rollback attack.
	ErrRolledBack = errors.New("fsshield: rollback detected")
	// ErrIago reports an inconsistent value returned by the untrusted
	// host (size, chunk length or offset out of bounds).
	ErrIago = errors.New("fsshield: untrusted host returned inconsistent state")
)

// Meter charges the shield's cryptographic work. Implemented by
// sgx.Enclave via EnclaveMeter; a nil Meter charges nothing.
type Meter interface {
	// Crypto charges AES/HMAC processing of n bytes.
	Crypto(n int64)
}

// AuditService records per-file epochs and roots so rollbacks of the
// (data, metadata) pair are detected. The CAS implements this remotely;
// LocalAudit implements it in-process.
type AuditService interface {
	// AdvanceRoot records that path moved to the given epoch with the
	// given metadata digest. Epochs must be strictly increasing.
	AdvanceRoot(path string, epoch uint64, root [32]byte) error
	// CheckRoot returns the recorded epoch and digest for path. ok is
	// false if the path has never been registered.
	CheckRoot(path string) (epoch uint64, root [32]byte, ok bool, err error)
}

// Config configures a Shield.
type Config struct {
	// Inner is the untrusted file system to protect. Required.
	Inner fsapi.FS
	// VolumeKey is the volume master key, provisioned by the CAS.
	VolumeKey seccrypto.Key
	// Rules is the path-prefix policy. Paths matching no rule pass
	// through.
	Rules []Rule
	// ChunkSize overrides the default 64 KiB chunk size.
	ChunkSize int
	// Meter charges crypto costs; nil charges nothing.
	Meter Meter
	// Audit, when set, receives epoch advances and is consulted on open
	// for freshness. Nil disables rollback protection.
	Audit AuditService
}

// DefaultChunkSize is the shield's chunk granularity.
const DefaultChunkSize = 64 << 10

// Shield is a protected view over an untrusted file system. It implements
// fsapi.FS.
type Shield struct {
	cfg Config
}

var _ fsapi.FS = (*Shield)(nil)

// New creates a Shield.
func New(cfg Config) (*Shield, error) {
	if cfg.Inner == nil {
		return nil, fmt.Errorf("fsshield: Config.Inner is required")
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	for _, r := range cfg.Rules {
		switch r.Level {
		case LevelPassthrough, LevelAuthenticated, LevelEncrypted:
		default:
			return nil, fmt.Errorf("fsshield: rule %q has invalid level %d", r.Prefix, int(r.Level))
		}
	}
	return &Shield{cfg: cfg}, nil
}

// LevelFor returns the protection level for a path: the longest matching
// rule prefix, or passthrough.
func (s *Shield) LevelFor(path string) Level {
	best := LevelPassthrough
	bestLen := -1
	for _, r := range s.cfg.Rules {
		if strings.HasPrefix(path, r.Prefix) && len(r.Prefix) > bestLen {
			best = r.Level
			bestLen = len(r.Prefix)
		}
	}
	return best
}

// metaKey derives the per-path metadata key from the volume key. It is
// stable across file incarnations so metadata can always be opened.
func (s *Shield) metaKey(path string) seccrypto.Key {
	return seccrypto.HKDF(s.cfg.VolumeKey[:], "fsshield-meta-v1", path)
}

// chunkKey derives the chunk encryption key for one file incarnation: the
// random generation salt guarantees a fresh key whenever the file is
// recreated, so (key, nonce) pairs never repeat across incarnations and
// replayed old-incarnation chunks fail authentication.
func (s *Shield) chunkKey(path string, generation [16]byte) seccrypto.Key {
	return seccrypto.HKDF(append(s.cfg.VolumeKey[:], generation[:]...), "fsshield-chunk-v1", path)
}

const metaSuffix = ".sfsmeta"

// Open implements fsapi.FS.
func (s *Shield) Open(name string) (fsapi.File, error) {
	level := s.LevelFor(name)
	if level == LevelPassthrough {
		return s.cfg.Inner.Open(name)
	}
	meta, err := s.loadMeta(name, level)
	if err != nil {
		return nil, err
	}
	data, err := s.cfg.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return newShieldFile(s, name, level, data, meta), nil
}

// Create implements fsapi.FS.
func (s *Shield) Create(name string) (fsapi.File, error) {
	level := s.LevelFor(name)
	if level == LevelPassthrough {
		return s.cfg.Inner.Create(name)
	}
	data, err := s.cfg.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	meta, err := newMetadata(level, s.cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	// If the audit service already has an epoch for this path (a previous
	// incarnation), continue from there so the truncate-and-recreate
	// sequence cannot be replayed.
	if s.cfg.Audit != nil {
		epoch, _, ok, err := s.cfg.Audit.CheckRoot(name)
		if err != nil {
			return nil, fmt.Errorf("fsshield: audit check for %q: %w", name, err)
		}
		if ok {
			meta.Epoch = epoch
		}
	}
	f := newShieldFile(s, name, level, data, meta)
	if err := f.flush(); err != nil {
		return nil, err
	}
	return f, nil
}

// Remove implements fsapi.FS.
func (s *Shield) Remove(name string) error {
	if s.LevelFor(name) == LevelPassthrough {
		return s.cfg.Inner.Remove(name)
	}
	if err := s.cfg.Inner.Remove(name); err != nil {
		return err
	}
	// Best-effort: a missing meta file is not an error once data is gone.
	if err := s.cfg.Inner.Remove(name + metaSuffix); err != nil && !errors.Is(err, fsapi.ErrNotExist) {
		return err
	}
	return nil
}

// Rename implements fsapi.FS. Renaming across protection levels or of
// protected files changes the key derivation path, so the shield
// re-encrypts by copy.
func (s *Shield) Rename(oldName, newName string) error {
	oldLevel, newLevel := s.LevelFor(oldName), s.LevelFor(newName)
	if oldLevel == LevelPassthrough && newLevel == LevelPassthrough {
		return s.cfg.Inner.Rename(oldName, newName)
	}
	data, err := fsapi.ReadFile(s, oldName)
	if err != nil {
		return fmt.Errorf("fsshield: rename read %q: %w", oldName, err)
	}
	if err := fsapi.WriteFile(s, newName, data); err != nil {
		return fmt.Errorf("fsshield: rename write %q: %w", newName, err)
	}
	return s.Remove(oldName)
}

// Stat implements fsapi.FS, reporting the logical (plaintext) size for
// protected files.
func (s *Shield) Stat(name string) (fsapi.FileInfo, error) {
	level := s.LevelFor(name)
	if level == LevelPassthrough {
		return s.cfg.Inner.Stat(name)
	}
	meta, err := s.loadMeta(name, level)
	if err != nil {
		return fsapi.FileInfo{}, err
	}
	return fsapi.FileInfo{Name: name, Size: meta.FileSize}, nil
}

// List implements fsapi.FS, hiding shield metadata files.
func (s *Shield) List(dir string) ([]string, error) {
	names, err := s.cfg.Inner.List(dir)
	if err != nil {
		return nil, err
	}
	out := names[:0]
	for _, n := range names {
		if !strings.HasSuffix(n, metaSuffix) {
			out = append(out, n)
		}
	}
	return out, nil
}

// MkdirAll implements fsapi.FS.
func (s *Shield) MkdirAll(dir string) error { return s.cfg.Inner.MkdirAll(dir) }

// loadMeta reads, authenticates and freshness-checks a file's metadata.
func (s *Shield) loadMeta(name string, level Level) (*metadata, error) {
	raw, err := fsapi.ReadFile(s.cfg.Inner, name+metaSuffix)
	if err != nil {
		if errors.Is(err, fsapi.ErrNotExist) {
			// Data without metadata (or no file at all): if the data file
			// exists this is tampering, otherwise a clean not-exist.
			if _, statErr := s.cfg.Inner.Stat(name); statErr == nil {
				return nil, fmt.Errorf("%w: %q has data but no metadata", ErrTampered, name)
			}
			return nil, fmt.Errorf("fsshield: open %q: %w", name, fsapi.ErrNotExist)
		}
		return nil, err
	}
	s.chargeCrypto(int64(len(raw)))
	meta, err := decodeMetadata(raw, s.metaKey(name), name, level)
	if err != nil {
		return nil, err
	}
	if meta.ChunkSize != uint32(s.cfg.ChunkSize) {
		// Honour the on-disk chunk size; it was authenticated.
		if meta.ChunkSize == 0 {
			return nil, fmt.Errorf("%w: %q has zero chunk size", ErrIago, name)
		}
	}
	if s.cfg.Audit != nil {
		epoch, root, ok, err := s.cfg.Audit.CheckRoot(name)
		if err != nil {
			return nil, fmt.Errorf("fsshield: audit check for %q: %w", name, err)
		}
		if ok {
			if meta.Epoch < epoch {
				return nil, fmt.Errorf("%w: %q at epoch %d, audit service records %d", ErrRolledBack, name, meta.Epoch, epoch)
			}
			if meta.Epoch == epoch && sha256.Sum256(raw) != root {
				return nil, fmt.Errorf("%w: %q metadata differs from audited root at epoch %d", ErrRolledBack, name, epoch)
			}
		}
	}
	return meta, nil
}

func (s *Shield) chargeCrypto(n int64) {
	if s.cfg.Meter != nil && n > 0 {
		s.cfg.Meter.Crypto(n)
	}
}
