package netshield

import (
	"net"
	"strings"
	"testing"

	"github.com/securetf/securetf/internal/seccrypto"
	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/vtime"
)

// testPKI creates a CA and two endpoint shields sharing it.
func testPKI(t *testing.T) (server, client *Shield, clock *vtime.Clock) {
	t.Helper()
	ca, err := seccrypto.NewCA("securetf-cas-ca")
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("worker-0", "localhost", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	clientCert, err := ca.Issue("client-0")
	if err != nil {
		t.Fatal(err)
	}
	clock = &vtime.Clock{}
	params := sgx.DefaultParams()
	server, err = New(Config{Params: params, Clock: clock, Identity: serverCert, RootCAs: ca.CertPool(), RequireClientCert: true})
	if err != nil {
		t.Fatal(err)
	}
	client, err = New(Config{Params: params, Clock: clock, Identity: clientCert, RootCAs: ca.CertPool()})
	if err != nil {
		t.Fatal(err)
	}
	return server, client, clock
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestEndToEndTLS(t *testing.T) {
	server, client, clock := testPKI(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sln := server.WrapListener(ln)
	defer sln.Close()

	type result struct {
		peer string
		err  error
	}
	results := make(chan result, 1)
	go func() {
		conn, err := sln.Accept()
		if err != nil {
			results <- result{err: err}
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := conn.Read(buf); err != nil {
			results <- result{err: err}
			return
		}
		if _, err := conn.Write(buf); err != nil {
			results <- result{err: err}
			return
		}
		results <- result{peer: PeerName(conn)}
	}()

	conn, err := client.Dial(net.Dial, "tcp", ln.Addr().String(), "localhost")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
	r := <-results
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.peer != "client-0" {
		t.Fatalf("server saw peer %q, want client-0 (mutual TLS)", r.peer)
	}
	if PeerName(conn) != "worker-0" {
		t.Fatalf("client saw peer %q, want worker-0", PeerName(conn))
	}
	if clock.Now() == 0 {
		t.Fatal("shield charged no virtual time")
	}
}

func TestRejectsUntrustedServer(t *testing.T) {
	// A server certified by a DIFFERENT CA must be rejected: the shield
	// pins the CAS CA.
	_, client, _ := testPKI(t)
	rogueCA, err := seccrypto.NewCA("rogue-ca")
	if err != nil {
		t.Fatal(err)
	}
	rogueCert, err := rogueCA.Issue("mitm", "localhost", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	clock := &vtime.Clock{}
	rogue, err := New(Config{Params: sgx.DefaultParams(), Clock: clock, Identity: rogueCert, RootCAs: rogueCA.CertPool()})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sln := rogue.WrapListener(ln)
	defer sln.Close()
	go func() {
		conn, err := sln.Accept()
		if err == nil {
			conn.Close()
		}
	}()

	if _, err := client.Dial(net.Dial, "tcp", ln.Addr().String(), "localhost"); err == nil {
		t.Fatal("man-in-the-middle server accepted")
	}
}

func TestServerRequiresClientCert(t *testing.T) {
	server, _, _ := testPKI(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sln := server.WrapListener(ln)
	defer sln.Close()
	accepted := make(chan error, 1)
	go func() {
		conn, err := sln.Accept()
		if err == nil {
			// TLS 1.3: client auth failure may surface on first read.
			buf := make([]byte, 1)
			_, err = conn.Read(buf)
			conn.Close()
		}
		accepted <- err
	}()

	// Raw TCP client with no TLS at all.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("not a tls hello"))
	conn.Close()
	if err := <-accepted; err == nil {
		t.Fatal("plaintext client accepted by shielded listener")
	}
}

func TestTLS13Only(t *testing.T) {
	server, client, _ := testPKI(t)
	// Inspect the negotiated version through a real connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sln := server.WrapListener(ln)
	defer sln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := sln.Accept()
		if err == nil {
			buf := make([]byte, 1)
			conn.Read(buf)
			conn.Close()
		}
	}()
	conn, err := client.Dial(net.Dial, "tcp", ln.Addr().String(), "localhost")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("x"))
	conn.Close()
	<-done
	// The shield sets MinVersion TLS 1.3; if the handshake succeeded the
	// negotiated version cannot be lower. This is a structural assertion:
	// the config must not drift.
	if server.cfg.Params.NetShieldThroughput <= 0 {
		t.Fatal("params lost")
	}
}

func TestTransferChargesShieldCPU(t *testing.T) {
	// Each endpooint charges record processing at the shield's effective
	// throughput; a 1 MiB transfer must cost at least the sender-side
	// crypto time.
	server, client, clock := testPKI(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sln := server.WrapListener(ln)
	defer sln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := sln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1<<20)
		total := 0
		for total < 1<<20 {
			n, err := conn.Read(buf[total:])
			if err != nil {
				return
			}
			total += n
		}
	}()
	conn, err := client.Dial(net.Dial, "tcp", ln.Addr().String(), "localhost")
	if err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	payload := make([]byte, 1<<20)
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	<-done
	elapsed := clock.Now() - before
	params := sgx.DefaultParams()
	cpu := sgx.TimeAtThroughput(1<<20, params.NetShieldThroughput)
	if elapsed < cpu {
		t.Fatalf("1 MiB transfer charged %v, want at least shield CPU time %v", elapsed, cpu)
	}
}

func TestRogueClientNameRejected(t *testing.T) {
	// Dialing with the wrong expected server name must fail.
	server, client, _ := testPKI(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sln := server.WrapListener(ln)
	defer sln.Close()
	go func() {
		conn, err := sln.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	_, err = client.Dial(net.Dial, "tcp", ln.Addr().String(), "not-the-server")
	if err == nil {
		t.Fatal("wrong server name accepted")
	}
	if !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("unexpected error: %v", err)
	}
}
