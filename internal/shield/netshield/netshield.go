// Package netshield implements secureTF's network shield (paper §3.3):
// TensorFlow applications have no end-to-end encryption of their own, so
// the shield transparently wraps every socket in TLS before data reaches
// the untrusted system software.
//
// Identities are ECDSA certificates issued by the CAS-internal CA and
// provisioned only after attestation; RSA key exchange does not exist in
// this stack (TLS 1.3 only, ECDHE key exchange), matching the paper's
// §7.3 recommendation to disable RSA in favour of forward-secret ECDHE.
//
// The shield charges the virtual clock for its CPU work: a handshake cost
// at connection setup and per-record processing (encrypt + double copy
// across the enclave boundary) on every read and write. Wire serialization
// is charged on the sending side.
package netshield

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net"
	"time"

	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/vtime"
)

// Config configures a network shield endpoint.
type Config struct {
	// Params supplies cost-model constants. Required fields are the
	// network-shield throughput and record cost.
	Params sgx.Params
	// Clock is charged for the shield's CPU costs. Required.
	Clock *vtime.Clock
	// Identity is this endpoint's certificate, issued by the CAS.
	Identity tls.Certificate
	// RootCAs pins the CAS certificate authority; peers outside it are
	// rejected.
	RootCAs *x509.CertPool
	// RequireClientCert makes servers demand and verify a client
	// certificate (mutual TLS). Default true — in secureTF both sides
	// are attested services.
	RequireClientCert bool
	// RTT is the network round-trip time to peers, charged during the
	// handshake (TCP connect + TLS 1.3 = 2 RTT). Defaults to
	// Params.LANRTT.
	RTT time.Duration
}

// Shield wraps connections in TLS and charges shield costs.
type Shield struct {
	cfg Config
}

// New validates the configuration and creates a shield.
func New(cfg Config) (*Shield, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("netshield: Config.Clock is required")
	}
	if len(cfg.Identity.Certificate) == 0 {
		return nil, fmt.Errorf("netshield: Config.Identity is required")
	}
	if cfg.RootCAs == nil {
		return nil, fmt.Errorf("netshield: Config.RootCAs is required")
	}
	return &Shield{cfg: cfg}, nil
}

func (s *Shield) rtt() time.Duration {
	if s.cfg.RTT > 0 {
		return s.cfg.RTT
	}
	return s.cfg.Params.LANRTT
}

func (s *Shield) chargeHandshake() {
	s.cfg.Clock.Advance(s.cfg.Params.TLSHandshakeCost + 2*s.rtt())
}

// Client performs a TLS client handshake over conn, verifying the server
// against the pinned CAS roots.
func (s *Shield) Client(conn net.Conn, serverName string) (net.Conn, error) {
	tc := tls.Client(conn, &tls.Config{
		MinVersion:   tls.VersionTLS13,
		Certificates: []tls.Certificate{s.cfg.Identity},
		RootCAs:      s.cfg.RootCAs,
		ServerName:   serverName,
	})
	if err := tc.Handshake(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netshield: client handshake: %w", err)
	}
	s.chargeHandshake()
	return &shieldConn{Conn: tc, shield: s}, nil
}

// Server performs a TLS server handshake over conn.
func (s *Shield) Server(conn net.Conn) (net.Conn, error) {
	clientAuth := tls.RequireAndVerifyClientCert
	if !s.cfg.RequireClientCert {
		clientAuth = tls.NoClientCert
	}
	tc := tls.Server(conn, &tls.Config{
		MinVersion:   tls.VersionTLS13,
		Certificates: []tls.Certificate{s.cfg.Identity},
		ClientCAs:    s.cfg.RootCAs,
		ClientAuth:   clientAuth,
	})
	if err := tc.Handshake(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netshield: server handshake: %w", err)
	}
	s.chargeHandshake()
	return &shieldConn{Conn: tc, shield: s}, nil
}

// Dial connects using the provided dial function (typically the SCONE
// runtime's) and wraps the result as a TLS client.
func (s *Shield) Dial(dial func(network, addr string) (net.Conn, error), network, addr, serverName string) (net.Conn, error) {
	conn, err := dial(network, addr)
	if err != nil {
		return nil, err
	}
	return s.Client(conn, serverName)
}

// WrapListener returns a listener whose Accept performs the TLS server
// handshake before returning the connection.
func (s *Shield) WrapListener(ln net.Listener) net.Listener {
	return &shieldListener{Listener: ln, shield: s}
}

type shieldListener struct {
	net.Listener
	shield *Shield
}

func (l *shieldListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.shield.Server(conn)
}

// shieldConn charges per-record costs around the TLS connection.
type shieldConn struct {
	net.Conn
	shield *Shield
}

func (c *shieldConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		params := c.shield.cfg.Params
		c.shield.cfg.Clock.Advance(params.NetShieldRecordCost +
			sgx.TimeAtThroughput(float64(n), params.NetShieldThroughput))
	}
	return n, err
}

func (c *shieldConn) Write(p []byte) (int, error) {
	if len(p) > 0 {
		params := c.shield.cfg.Params
		// CPU cost only (record framing, AES-GCM, double boundary copy).
		// Wire serialization and propagation latency belong to the
		// transport model and are charged by protocol layers through
		// virtual-time message stamps, so they are not double-counted
		// between shielded and unshielded runs.
		c.shield.cfg.Clock.Advance(params.NetShieldRecordCost +
			sgx.TimeAtThroughput(float64(len(p)), params.NetShieldThroughput))
	}
	return c.Conn.Write(p)
}

// PeerName reports the common name of the connection's verified peer
// certificate, or empty if none.
func PeerName(conn net.Conn) string {
	sc, ok := conn.(*shieldConn)
	if !ok {
		return ""
	}
	tc, ok := sc.Conn.(*tls.Conn)
	if !ok {
		return ""
	}
	state := tc.ConnectionState()
	if len(state.PeerCertificates) == 0 {
		return ""
	}
	return state.PeerCertificates[0].Subject.CommonName
}
