// Package benchfmt converts `go test -json` benchmark output into the
// committed BENCH_ci.json format and enforces the CI regression gate
// against a baseline checked into the repository.
//
// The committed format is deliberately small and diff-friendly: one
// object per benchmark (GOMAXPROCS suffix stripped), mapping metric
// units to values. A baseline file additionally carries the gate list —
// which (benchmark, metric) pairs must not regress, and by how much —
// so tightening the gate is a reviewed change to a committed file, not
// an edit to CI scripts.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Metrics maps a metric unit (ns/op, req/s-virtual, …) to its value.
type Metrics map[string]float64

// Report is the committed BENCH_ci.json shape.
type Report struct {
	Format     int                `json:"format"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// Gate is one regression rule: the named metric of the named benchmark
// may not regress by more than MaxRegressionPct percent relative to the
// baseline value. HigherIsBetter selects the regression direction
// (false means a larger value is a regression, e.g. latency).
type Gate struct {
	Bench            string  `json:"bench"`
	Metric           string  `json:"metric"`
	MaxRegressionPct float64 `json:"max_regression_pct"`
	HigherIsBetter   bool    `json:"higher_is_better"`
}

// Baseline is the committed baseline file: reference metrics plus the
// gates enforced against them.
type Baseline struct {
	Format     int                `json:"format"`
	Gates      []Gate             `json:"gates"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// testEvent is the subset of the `go test -json` event stream we read.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// ParseGoTestJSON reads a `go test -json` stream and collects every
// benchmark result line into a Report. Benchmark names are normalized
// by stripping the trailing -GOMAXPROCS suffix, so the committed format
// is stable across runner core counts.
//
// `go test` emits one benchmark result as multiple output events (the
// name, ending in a tab, then the measurements), so output is
// reassembled per package and split on real newlines before parsing.
// Events from different packages may interleave; benchmarks within one
// package are sequential.
func ParseGoTestJSON(r io.Reader) (*Report, error) {
	report := &Report{Format: 1, Benchmarks: make(map[string]Metrics)}
	pending := make(map[string]string) // package → unterminated output
	flush := func(pkg, text string) {
		text = pending[pkg] + text
		for {
			nl := strings.IndexByte(text, '\n')
			if nl < 0 {
				break
			}
			if name, metrics, ok := parseBenchLine(text[:nl]); ok {
				report.Benchmarks[name] = metrics
			}
			text = text[nl+1:]
		}
		pending[pkg] = text
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("benchfmt: malformed test event: %w", err)
		}
		if ev.Action != "output" {
			continue
		}
		flush(ev.Package, ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(report.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark results in input")
	}
	return report, nil
}

// parseBenchLine parses one benchmark result line of the form
//
//	BenchmarkName/sub-8   1   123 ns/op   456 unit-a   7.8 unit-b
//
// returning the normalized name and the unit → value metrics.
func parseBenchLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	// fields[1] is the iteration count; value/unit pairs follow.
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	metrics := make(Metrics)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return normalizeName(fields[0]), metrics, true
}

// normalizeName strips the -GOMAXPROCS suffix go appends to the last
// path element of a benchmark name.
func normalizeName(name string) string {
	slash := strings.LastIndex(name, "/")
	dash := strings.LastIndex(name, "-")
	if dash > slash {
		if _, err := strconv.Atoi(name[dash+1:]); err == nil {
			return name[:dash]
		}
	}
	return name
}

// Violation reports one gate failure.
type Violation struct {
	Gate     Gate
	Baseline float64
	Current  float64
	// ChangePct is the signed relative change of the current value
	// against the baseline, in percent.
	ChangePct float64
	// Missing marks a gated metric absent from the current report — a
	// renamed or skipped benchmark must fail the gate, not pass it.
	Missing bool
}

func (v Violation) String() string {
	if v.Missing {
		return fmt.Sprintf("%s %s: gated metric missing from the current run", v.Gate.Bench, v.Gate.Metric)
	}
	return fmt.Sprintf("%s %s: %.4g → %.4g (%+.1f%%, allowed regression %.0f%%)",
		v.Gate.Bench, v.Gate.Metric, v.Baseline, v.Current, v.ChangePct, v.Gate.MaxRegressionPct)
}

// Check evaluates every gate of the baseline against the current
// report and returns the violations (empty means the gate passes).
func Check(baseline *Baseline, current *Report) ([]Violation, error) {
	var out []Violation
	for _, g := range baseline.Gates {
		base, ok := baseline.Benchmarks[g.Bench][g.Metric]
		if !ok {
			return nil, fmt.Errorf("benchfmt: gate references %s %s, absent from the baseline's own metrics", g.Bench, g.Metric)
		}
		if base == 0 {
			return nil, fmt.Errorf("benchfmt: gate %s %s has a zero baseline value", g.Bench, g.Metric)
		}
		if g.MaxRegressionPct <= 0 {
			return nil, fmt.Errorf("benchfmt: gate %s %s has no regression allowance", g.Bench, g.Metric)
		}
		cur, ok := current.Benchmarks[g.Bench][g.Metric]
		if !ok {
			out = append(out, Violation{Gate: g, Baseline: base, Missing: true})
			continue
		}
		change := 100 * (cur - base) / base
		regressed := change < -g.MaxRegressionPct
		if !g.HigherIsBetter {
			regressed = change > g.MaxRegressionPct
		}
		if regressed {
			out = append(out, Violation{Gate: g, Baseline: base, Current: cur, ChangePct: change})
		}
	}
	return out, nil
}

// MissingBaseline lists every "bench metric" the current run produced
// that the baseline carries no reference value for, sorted. A non-empty
// result means the baseline predates the benchmark suite: a newly added
// benchmark (or metric) would otherwise sail through the gate untracked
// — a zero-value pass — until someone remembered to commit it. The gate
// treats this as a failure so adding a benchmark forces the reviewed
// baseline update in the same change.
func MissingBaseline(baseline *Baseline, current *Report) []string {
	var out []string
	for bench, metrics := range current.Benchmarks {
		for metric := range metrics {
			if _, ok := baseline.Benchmarks[bench][metric]; !ok {
				out = append(out, bench+" "+metric)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Marshal renders a report as committed-format JSON. Key order is
// stable (encoding/json sorts map keys), so re-running the converter on
// identical results yields an identical file.
func Marshal(r *Report) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ParseBaseline reads a committed baseline file.
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchfmt: malformed baseline: %w", err)
	}
	if b.Format != 1 {
		return nil, fmt.Errorf("benchfmt: unsupported baseline format %d", b.Format)
	}
	if len(b.Gates) == 0 {
		return nil, fmt.Errorf("benchfmt: baseline defines no gates")
	}
	return &b, nil
}
