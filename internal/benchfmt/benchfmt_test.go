package benchfmt

import (
	"strings"
	"testing"
)

// stream builds a `go test -json` event stream from raw output lines.
func stream(lines ...string) string {
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(`{"Action":"output","Package":"p","Output":"` + l + `\n"}` + "\n")
	}
	return b.String()
}

func TestParseGoTestJSON(t *testing.T) {
	in := stream(
		`=== RUN   TestSomething`,
		`BenchmarkServingThroughput/batch32-8   \t       1\t  52734 ns/op\t  3969 req/s-virtual\t 210.4 req/s-wall`,
		`BenchmarkDistShardedTraining-8   \t       1\t  99 ns/op\t  1.96 speedup-2workers-x\t 52.55 push-wire-ms-shard1`,
		`--- PASS: TestSomething`,
		`PASS`,
	)
	r, err := ParseGoTestJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(r.Benchmarks), r.Benchmarks)
	}
	m, ok := r.Benchmarks["BenchmarkServingThroughput/batch32"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", r.Benchmarks)
	}
	if m["req/s-virtual"] != 3969 {
		t.Fatalf("req/s-virtual = %v, want 3969", m["req/s-virtual"])
	}
	if got := r.Benchmarks["BenchmarkDistShardedTraining"]["speedup-2workers-x"]; got != 1.96 {
		t.Fatalf("speedup-2workers-x = %v, want 1.96", got)
	}
}

// TestParseSplitEvents covers go test's real emission shape: the
// benchmark name and its measurements arrive as separate output events,
// the name's event ending in a tab rather than a newline.
func TestParseSplitEvents(t *testing.T) {
	in := `{"Action":"output","Package":"p","Output":"BenchmarkServingThroughput/batch32\n"}
{"Action":"output","Package":"p","Output":"BenchmarkServingThroughput/batch32-8        \t"}
{"Action":"output","Package":"q","Output":"ok  \tother\t0.1s\n"}
{"Action":"output","Package":"p","Output":"       1\t  7421913 ns/op\t        11.21 req/s-virtual\n"}
`
	r, err := ParseGoTestJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := r.Benchmarks["BenchmarkServingThroughput/batch32"]
	if !ok {
		t.Fatalf("split result line not reassembled: %v", r.Benchmarks)
	}
	if m["req/s-virtual"] != 11.21 {
		t.Fatalf("req/s-virtual = %v, want 11.21", m["req/s-virtual"])
	}
}

func TestParseRejectsEmptyRun(t *testing.T) {
	if _, err := ParseGoTestJSON(strings.NewReader(stream(`PASS`))); err == nil {
		t.Fatal("a run with no benchmark results was accepted")
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo/batch32-16": "BenchmarkFoo/batch32",
		"BenchmarkFoo/sub-case-8": "BenchmarkFoo/sub-case",
		"BenchmarkFoo":            "BenchmarkFoo",
		"BenchmarkFoo/x-y":        "BenchmarkFoo/x-y", // non-numeric suffix survives
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func baselineFor(t *testing.T) *Baseline {
	t.Helper()
	return &Baseline{
		Format: 1,
		Gates: []Gate{
			{Bench: "BenchmarkServingThroughput/batch32", Metric: "req/s-virtual", MaxRegressionPct: 20, HigherIsBetter: true},
			{Bench: "BenchmarkDistShardedTraining", Metric: "speedup-2workers-x", MaxRegressionPct: 20, HigherIsBetter: true},
		},
		Benchmarks: map[string]Metrics{
			"BenchmarkServingThroughput/batch32": {"req/s-virtual": 4000},
			"BenchmarkDistShardedTraining":       {"speedup-2workers-x": 2.0},
		},
	}
}

func report(reqs, speedup float64) *Report {
	return &Report{Format: 1, Benchmarks: map[string]Metrics{
		"BenchmarkServingThroughput/batch32": {"req/s-virtual": reqs},
		"BenchmarkDistShardedTraining":       {"speedup-2workers-x": speedup},
	}}
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	// 15% below baseline on both gated metrics: inside the 20% allowance.
	v, err := Check(baselineFor(t), report(3400, 1.7))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Improvements never violate.
	if v, _ := Check(baselineFor(t), report(9000, 3.5)); len(v) != 0 {
		t.Fatalf("improvement flagged as regression: %v", v)
	}
}

func TestCheckFlagsRegression(t *testing.T) {
	// Virtual throughput down 25%: over the 20% allowance.
	v, err := Check(baselineFor(t), report(3000, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || v[0].Gate.Metric != "req/s-virtual" {
		t.Fatalf("violations = %v, want one req/s-virtual regression", v)
	}
	if !strings.Contains(v[0].String(), "req/s-virtual") {
		t.Fatalf("violation string uninformative: %s", v[0])
	}
	// Speedup collapse is caught independently.
	v, err = Check(baselineFor(t), report(4000, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || v[0].Gate.Metric != "speedup-2workers-x" {
		t.Fatalf("violations = %v, want one speedup regression", v)
	}
}

func TestCheckFlagsMissingMetric(t *testing.T) {
	cur := &Report{Format: 1, Benchmarks: map[string]Metrics{
		"BenchmarkServingThroughput/batch32": {"req/s-virtual": 4000},
	}}
	v, err := Check(baselineFor(t), cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !v[0].Missing {
		t.Fatalf("violations = %v, want one missing-metric violation", v)
	}
}

func TestCheckLowerIsBetter(t *testing.T) {
	b := &Baseline{
		Format:     1,
		Gates:      []Gate{{Bench: "B", Metric: "ms", MaxRegressionPct: 20}},
		Benchmarks: map[string]Metrics{"B": {"ms": 100}},
	}
	cur := &Report{Format: 1, Benchmarks: map[string]Metrics{"B": {"ms": 130}}}
	if v, err := Check(b, cur); err != nil || len(v) != 1 {
		t.Fatalf("latency growth not flagged: v=%v err=%v", v, err)
	}
	cur.Benchmarks["B"]["ms"] = 115
	if v, err := Check(b, cur); err != nil || len(v) != 0 {
		t.Fatalf("latency within allowance flagged: v=%v err=%v", v, err)
	}
}

func TestCheckRejectsBrokenBaseline(t *testing.T) {
	b := baselineFor(t)
	b.Gates[0].Bench = "BenchmarkNoSuch"
	if _, err := Check(b, report(4000, 2)); err == nil {
		t.Fatal("gate referencing an absent baseline metric accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := report(4000, 2)
	out, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(again) {
		t.Fatal("Marshal is not deterministic")
	}
	if !strings.Contains(string(out), `"req/s-virtual": 4000`) {
		t.Fatalf("marshalled report missing metric:\n%s", out)
	}
}

func TestParseBaselineValidation(t *testing.T) {
	if _, err := ParseBaseline([]byte(`{`)); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	if _, err := ParseBaseline([]byte(`{"format":2,"gates":[{"bench":"b","metric":"m","max_regression_pct":20}]}`)); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := ParseBaseline([]byte(`{"format":1,"gates":[]}`)); err == nil {
		t.Fatal("gate-less baseline accepted")
	}
}
