package tflite

import (
	"testing"

	"github.com/securetf/securetf/internal/device"
	"github.com/securetf/securetf/internal/tf"
)

// convertAndRun converts a graph and runs both engines on the same
// input, returning (tf output, lite output).
func convertAndRun(t *testing.T, g *tf.Graph, in, out *tf.Node, input *tf.Tensor) (*tf.Tensor, *tf.Tensor) {
	t.Helper()
	sess := tf.NewSession(g)
	defer sess.Close()
	ref, err := sess.Run(tf.Feeds{in: input}, []*tf.Node{out})
	if err != nil {
		t.Fatal(err)
	}

	model, err := Convert(g, []*tf.Node{in}, []*tf.Node{out}, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterpreter(model)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	if err := ip.SetInput(0, input); err != nil {
		t.Fatal(err)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	got, err := ip.Output(0)
	if err != nil {
		t.Fatal(err)
	}
	return ref[0], got
}

func TestConvertStandaloneAdd(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float32, tf.Shape{-1, 4})
	bias, err := tf.FromFloats(tf.Shape{1, 4}, []float32{1, -2, 3, -4})
	if err != nil {
		t.Fatal(err)
	}
	sum := g.Add(x, g.Const("offset", bias))
	input := tf.RandNormal(tf.Shape{1, 4}, 1, 7)
	ref, got := convertAndRun(t, g, x, sum, input)
	if !tf.AllClose(ref, got, 1e-6) {
		t.Fatalf("lite Add disagrees with engine:\n%v\nvs\n%v", ref.Floats(), got.Floats())
	}
}

func TestConvertStandaloneRelu(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float32, tf.Shape{-1, 8})
	y := g.Relu(x)
	input := tf.RandNormal(tf.Shape{2, 8}, 1, 9)
	ref, got := convertAndRun(t, g, x, y, input)
	if !tf.AllClose(ref, got, 1e-6) {
		t.Fatal("lite Relu disagrees with engine")
	}
	for _, v := range got.Floats() {
		if v < 0 {
			t.Fatalf("relu output %v negative", v)
		}
	}
}

func TestConvertArgMax(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float32, tf.Shape{-1, 5})
	y := g.ArgMax(x)
	input, err := tf.FromFloats(tf.Shape{2, 5}, []float32{
		0, 9, 2, 3, 4,
		5, 1, 2, 8, 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, got := convertAndRun(t, g, x, y, input)
	if ref.DType() != got.DType() {
		t.Fatalf("dtype %v vs %v", ref.DType(), got.DType())
	}
	want := []int32{1, 3}
	for i, w := range want {
		if got.Ints()[i] != w {
			t.Fatalf("argmax[%d] = %d, want %d", i, got.Ints()[i], w)
		}
	}
}

func TestOpCodeStrings(t *testing.T) {
	seen := map[string]bool{}
	for code := OpFullyConnected; code <= OpArgMax+2; code++ {
		s := code.String()
		if s == "" {
			t.Fatalf("opcode %d has empty name", code)
		}
		if seen[s] && s != "UNKNOWN" {
			t.Fatalf("duplicate opcode name %q", s)
		}
		seen[s] = true
	}
}

func TestWithInstanceID(t *testing.T) {
	spec := tf.Shape{1, 4}
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float32, tf.Shape{-1, 4})
	y := g.Relu(x)
	model, err := Convert(g, []*tf.Node{x}, []*tf.Node{y}, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Two interpreters over the same model on one device must not
	// collide on residency registration names.
	dev := device.NewNull()
	a, err := NewInterpreter(model, WithDevice(dev), WithInstanceID("a"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewInterpreter(model, WithDevice(dev), WithInstanceID("b"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	in := tf.RandNormal(spec, 1, 1)
	for _, ip := range []*Interpreter{a, b} {
		if err := ip.SetInput(0, in); err != nil {
			t.Fatal(err)
		}
		if err := ip.Invoke(); err != nil {
			t.Fatal(err)
		}
	}
}
