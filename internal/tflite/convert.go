package tflite

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/securetf/securetf/internal/tf"
)

// ConvertOptions configures the frozen-graph converter.
type ConvertOptions struct {
	// Quantize enables int8 post-training weight quantization (§7.2
	// model optimization): weight matrices/filters are stored as int8
	// plus a per-tensor scale, shrinking the model ~4× and with it the
	// enclave working set.
	Quantize bool
}

// Convert lowers a frozen tf graph to a flat inference model. The graph
// must contain no variables (freeze first); inputs are the feed
// placeholders and outputs the fetch nodes.
//
// The converter performs the optimizations the paper attributes to
// TensorFlow Lite and to §7.2: dead nodes are pruned (only ops reachable
// from the outputs are emitted), MatMul/Conv2D+BiasAdd+ReLU chains are
// fused into single operators, and dropout becomes the identity.
func Convert(g *tf.Graph, inputs, outputs []*tf.Node, opts ConvertOptions) (*Model, error) {
	for _, n := range g.Nodes() {
		if n.Op() == tf.OpVariable {
			return nil, fmt.Errorf("tflite: graph has variable %q; freeze before converting", n.Name())
		}
	}
	c := &converter{
		opts:      opts,
		model:     &Model{},
		tensorOf:  make(map[*tf.Node]int),
		consumers: make(map[*tf.Node]int),
	}
	// Consumer counts over the reachable subgraph gate fusion: an inner
	// node consumed elsewhere cannot be folded away.
	seen := make(map[*tf.Node]bool)
	var walk func(n *tf.Node)
	walk = func(n *tf.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Inputs() {
			c.consumers[in]++
			walk(in)
		}
	}
	for _, out := range outputs {
		walk(out)
	}

	for _, in := range inputs {
		if in.Op() != tf.OpPlaceholder {
			return nil, fmt.Errorf("tflite: input %q is %s, want placeholder", in.Name(), in.Op())
		}
		idx := c.addTensor(in.Name(), in.Shape(), -1, 0)
		c.tensorOf[in] = idx
		c.model.Inputs = append(c.model.Inputs, idx)
	}

	for _, out := range outputs {
		idx, err := c.emit(out)
		if err != nil {
			return nil, err
		}
		c.model.Outputs = append(c.model.Outputs, idx)
	}
	return c.model, nil
}

type converter struct {
	opts      ConvertOptions
	model     *Model
	tensorOf  map[*tf.Node]int
	consumers map[*tf.Node]int
}

func (c *converter) addTensor(name string, shape tf.Shape, buffer int, scale float64) int {
	c.model.Tensors = append(c.model.Tensors, TensorSpec{
		Name:   name,
		Type:   TypeFloat32,
		Shape:  append([]int(nil), shape...),
		Buffer: buffer,
		Scale:  scale,
	})
	return len(c.model.Tensors) - 1
}

// addConst materializes a constant node as a weight buffer, quantizing
// rank>=2 float weights when enabled.
func (c *converter) addConst(n *tf.Node) (int, error) {
	if idx, ok := c.tensorOf[n]; ok {
		return idx, nil
	}
	t := n.ConstValue()
	if t == nil {
		return 0, fmt.Errorf("tflite: %q is not a constant", n.Name())
	}
	if t.DType() != tf.Float32 {
		return 0, fmt.Errorf("tflite: constant %q has unsupported dtype %v", n.Name(), t.DType())
	}
	var idx int
	if c.opts.Quantize && len(t.Shape()) >= 2 {
		raw, scale := quantizeInt8(t.Floats())
		c.model.Buffers = append(c.model.Buffers, raw)
		c.model.Tensors = append(c.model.Tensors, TensorSpec{
			Name:   n.Name(),
			Type:   TypeInt8,
			Shape:  append([]int(nil), t.Shape()...),
			Buffer: len(c.model.Buffers) - 1,
			Scale:  scale,
		})
		idx = len(c.model.Tensors) - 1
	} else {
		raw := make([]byte, 4*t.NumElements())
		for i, v := range t.Floats() {
			binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
		}
		c.model.Buffers = append(c.model.Buffers, raw)
		idx = c.addTensor(n.Name(), t.Shape(), len(c.model.Buffers)-1, 0)
	}
	c.tensorOf[n] = idx
	return idx, nil
}

func (c *converter) emit(n *tf.Node) (int, error) {
	if idx, ok := c.tensorOf[n]; ok {
		return idx, nil
	}
	var idx int
	var err error
	switch {
	case n.Op() == tf.OpConst:
		return c.addConst(n)
	case n.Op() == tf.OpRelu && c.fusable(n.Inputs()[0], tf.OpBiasAdd):
		idx, err = c.emitLinear(n, n.Inputs()[0].Inputs()[0], n.Inputs()[0].Inputs()[1], ActRelu)
	case n.Op() == tf.OpRelu && c.fusable(n.Inputs()[0], tf.OpMatMul, tf.OpConv2D):
		idx, err = c.emitLinear(n, n.Inputs()[0], nil, ActRelu)
	case n.Op() == tf.OpBiasAdd && c.fusable(n.Inputs()[0], tf.OpMatMul, tf.OpConv2D):
		idx, err = c.emitLinear(n, n.Inputs()[0], n.Inputs()[1], ActNone)
	case n.Op() == tf.OpMatMul || n.Op() == tf.OpConv2D:
		idx, err = c.emitLinear(n, n, nil, ActNone)
	case n.Op() == tf.OpRelu:
		idx, err = c.emitSimple(n, OpRelu, n.Inputs()[0])
	case n.Op() == tf.OpSoftmax:
		idx, err = c.emitSimple(n, OpSoftmax, n.Inputs()[0])
	case n.Op() == tf.OpMaxPool, n.Op() == tf.OpAvgPool:
		idx, err = c.emitPool(n)
	case n.Op() == tf.OpReshape:
		idx, err = c.emitReshape(n)
	case n.Op() == tf.OpDropout:
		// Inference identity: reuse the input tensor.
		return c.emit(n.Inputs()[0])
	case n.Op() == tf.OpAdd:
		idx, err = c.emitAdd(n)
	case n.Op() == tf.OpArgMax:
		idx, err = c.emitSimple(n, OpArgMax, n.Inputs()[0])
	case n.Op() == tf.OpPlaceholder:
		return 0, fmt.Errorf("tflite: placeholder %q not declared as an input", n.Name())
	default:
		return 0, fmt.Errorf("tflite: unsupported op %s (node %q)", n.Op(), n.Name())
	}
	if err != nil {
		return 0, err
	}
	c.tensorOf[n] = idx
	return idx, nil
}

// fusable reports whether inner is one of the given ops and is consumed
// only by the node being fused (so folding it away is safe). For BiasAdd
// chains the MatMul/Conv2D below must also be single-consumer.
func (c *converter) fusable(inner *tf.Node, ops ...string) bool {
	if c.consumers[inner] != 1 {
		return false
	}
	for _, op := range ops {
		if inner.Op() == op {
			if op == tf.OpBiasAdd {
				lin := inner.Inputs()[0]
				return c.consumers[lin] == 1 && (lin.Op() == tf.OpMatMul || lin.Op() == tf.OpConv2D)
			}
			return true
		}
	}
	return false
}

// emitLinear emits a FullyConnected or fused Conv2D. outNode is the
// outermost node of the fused chain; lin is the MatMul/Conv2D; bias may
// be nil.
func (c *converter) emitLinear(outNode, lin *tf.Node, bias *tf.Node, act Activation) (int, error) {
	xIdx, err := c.emit(lin.Inputs()[0])
	if err != nil {
		return 0, err
	}
	wIdx, err := c.addConst(lin.Inputs()[1])
	if err != nil {
		return 0, fmt.Errorf("tflite: weights of %q: %w", lin.Name(), err)
	}
	inputs := []int{xIdx, wIdx}
	if bias != nil {
		bIdx, err := c.addConst(bias)
		if err != nil {
			return 0, fmt.Errorf("tflite: bias of %q: %w", outNode.Name(), err)
		}
		inputs = append(inputs, bIdx)
	}
	outIdx := c.addTensor(outNode.Name(), outNode.Shape(), -1, 0)
	op := OpSpec{
		Inputs:     inputs,
		Outputs:    []int{outIdx},
		Activation: act,
		CostScale:  lin.CostScale(),
	}
	if lin.Op() == tf.OpMatMul {
		op.Code = OpFullyConnected
	} else {
		op.Code = OpConv2D
		op.Stride = int(lin.AttrInt("stride", 1))
		if lin.AttrString("padding", tf.PaddingValid) == tf.PaddingSame {
			op.Padding = PadSame
		}
	}
	c.model.Ops = append(c.model.Ops, op)
	return outIdx, nil
}

func (c *converter) emitSimple(n *tf.Node, code OpCode, input *tf.Node) (int, error) {
	xIdx, err := c.emit(input)
	if err != nil {
		return 0, err
	}
	outIdx := c.addTensor(n.Name(), n.Shape(), -1, 0)
	c.model.Ops = append(c.model.Ops, OpSpec{
		Code: code, Inputs: []int{xIdx}, Outputs: []int{outIdx}, CostScale: n.CostScale(),
	})
	return outIdx, nil
}

func (c *converter) emitPool(n *tf.Node) (int, error) {
	xIdx, err := c.emit(n.Inputs()[0])
	if err != nil {
		return 0, err
	}
	code := OpMaxPool
	if n.Op() == tf.OpAvgPool {
		code = OpAvgPool
	}
	outIdx := c.addTensor(n.Name(), n.Shape(), -1, 0)
	c.model.Ops = append(c.model.Ops, OpSpec{
		Code:    code,
		Inputs:  []int{xIdx},
		Outputs: []int{outIdx},
		K:       int(n.AttrInt("k", 2)),
		Stride:  int(n.AttrInt("stride", 2)),
	})
	return outIdx, nil
}

func (c *converter) emitReshape(n *tf.Node) (int, error) {
	xIdx, err := c.emit(n.Inputs()[0])
	if err != nil {
		return 0, err
	}
	ints := n.AttrInts("shape")
	target := make([]int, len(ints))
	for i, v := range ints {
		target[i] = int(v)
	}
	outIdx := c.addTensor(n.Name(), n.Shape(), -1, 0)
	c.model.Ops = append(c.model.Ops, OpSpec{
		Code: OpReshape, Inputs: []int{xIdx}, Outputs: []int{outIdx}, NewShape: target,
	})
	return outIdx, nil
}

func (c *converter) emitAdd(n *tf.Node) (int, error) {
	aIdx, err := c.emit(n.Inputs()[0])
	if err != nil {
		return 0, err
	}
	bIdx, err := c.emit(n.Inputs()[1])
	if err != nil {
		return 0, err
	}
	outIdx := c.addTensor(n.Name(), n.Shape(), -1, 0)
	c.model.Ops = append(c.model.Ops, OpSpec{
		Code: OpAdd, Inputs: []int{aIdx, bIdx}, Outputs: []int{outIdx},
	})
	return outIdx, nil
}

// quantizeInt8 performs symmetric per-tensor quantization.
func quantizeInt8(vals []float32) ([]byte, float64) {
	var maxAbs float64
	for _, v := range vals {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	scale := maxAbs / 127
	out := make([]byte, len(vals))
	for i, v := range vals {
		q := math.RoundToEven(float64(v) / scale)
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		out[i] = byte(int8(q))
	}
	return out, scale
}
