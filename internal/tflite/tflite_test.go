package tflite

import (
	"math"
	"testing"

	"github.com/securetf/securetf/internal/device"
	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/tf"
)

// buildFrozenMLP trains nothing — it just builds a deterministic frozen
// 2-layer MLP for conversion tests, returning the frozen graph and node
// handles.
func buildFrozenMLP(t *testing.T) (*tf.Graph, *tf.Node, *tf.Node) {
	t.Helper()
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float32, tf.Shape{-1, 6})
	w1 := g.Variable("w1", tf.RandNormal(tf.Shape{6, 10}, 0.5, 201))
	b1 := g.Variable("b1", tf.RandNormal(tf.Shape{10}, 0.1, 202))
	h := g.Relu(g.BiasAdd(g.MatMul(x, w1), b1))
	drop := g.Dropout(h, 0.3) // identity at inference; converter elides it
	w2 := g.Variable("w2", tf.RandNormal(tf.Shape{10, 4}, 0.5, 203))
	logits := g.MatMul(drop, w2)
	probs := g.Softmax(logits)

	sess := tf.NewSession(g)
	defer sess.Close()
	frozen, err := tf.Freeze(sess, []*tf.Node{probs})
	if err != nil {
		t.Fatal(err)
	}
	return frozen, frozen.Node(x.Name()), frozen.Node(probs.Name())
}

// tfReference evaluates the frozen graph directly for comparison.
func tfReference(t *testing.T, g *tf.Graph, x, out *tf.Node, in *tf.Tensor) *tf.Tensor {
	t.Helper()
	sess := tf.NewSession(g)
	defer sess.Close()
	res, err := sess.Run(tf.Feeds{x: in}, []*tf.Node{out})
	if err != nil {
		t.Fatal(err)
	}
	return res[0]
}

func TestConvertAndInvokeMatchesTF(t *testing.T) {
	g, x, probs := buildFrozenMLP(t)
	model, err := Convert(g, []*tf.Node{x}, []*tf.Node{probs}, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Fusion check: the whole MLP should lower to FC, FC, SOFTMAX.
	if len(model.Ops) != 3 {
		t.Fatalf("ops = %d (%v), want 3 after fusion", len(model.Ops), opCodes(model))
	}
	if model.Ops[0].Code != OpFullyConnected || model.Ops[0].Activation != ActRelu {
		t.Fatalf("op 0 = %v/%v, want fused FC+ReLU", model.Ops[0].Code, model.Ops[0].Activation)
	}

	in := tf.RandNormal(tf.Shape{5, 6}, 1, 204)
	want := tfReference(t, g, x, probs, in)

	ip, err := NewInterpreter(model)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	if err := ip.SetInput(0, in); err != nil {
		t.Fatal(err)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	got, err := ip.Output(0)
	if err != nil {
		t.Fatal(err)
	}
	if !tf.AllClose(want, got, 1e-5) {
		t.Fatal("tflite output differs from TensorFlow reference")
	}
}

func opCodes(m *Model) []OpCode {
	out := make([]OpCode, len(m.Ops))
	for i, op := range m.Ops {
		out[i] = op.Code
	}
	return out
}

func TestConvertCNN(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float32, tf.Shape{-1, 8, 8, 1})
	f1 := g.Variable("f1", tf.RandNormal(tf.Shape{3, 3, 1, 4}, 0.4, 301))
	b1 := g.Variable("b1", tf.RandNormal(tf.Shape{4}, 0.1, 302))
	conv := g.Relu(g.BiasAdd(g.Conv2D(x, f1, 1, tf.PaddingSame), b1))
	pool := g.MaxPool(conv, 2, 2)
	flat := g.Flatten(pool)
	w := g.Variable("w", tf.RandNormal(tf.Shape{64, 3}, 0.3, 303))
	logits := g.MatMul(flat, w)

	sess := tf.NewSession(g)
	defer sess.Close()
	frozen, err := tf.Freeze(sess, []*tf.Node{logits})
	if err != nil {
		t.Fatal(err)
	}
	fx, fl := frozen.Node(x.Name()), frozen.Node(logits.Name())

	model, err := Convert(frozen, []*tf.Node{fx}, []*tf.Node{fl}, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := opCodes(model); len(got) != 4 {
		t.Fatalf("ops = %v, want fused CONV, MAXPOOL, RESHAPE, FC", got)
	}

	in := tf.RandNormal(tf.Shape{2, 8, 8, 1}, 1, 304)
	want := tfReference(t, frozen, fx, fl, in)

	ip, err := NewInterpreter(model)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	if err := ip.SetInput(0, in); err != nil {
		t.Fatal(err)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	got, err := ip.Output(0)
	if err != nil {
		t.Fatal(err)
	}
	if !tf.AllClose(want, got, 1e-4) {
		t.Fatal("CNN output differs from TensorFlow reference")
	}
}

func TestModelMarshalRoundTrip(t *testing.T) {
	g, x, probs := buildFrozenMLP(t)
	model, err := Convert(g, []*tf.Node{x}, []*tf.Node{probs}, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	raw := model.Marshal()
	restored, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}

	in := tf.RandNormal(tf.Shape{3, 6}, 1, 205)
	run := func(m *Model) *tf.Tensor {
		ip, err := NewInterpreter(m)
		if err != nil {
			t.Fatal(err)
		}
		defer ip.Close()
		if err := ip.SetInput(0, in); err != nil {
			t.Fatal(err)
		}
		if err := ip.Invoke(); err != nil {
			t.Fatal(err)
		}
		out, err := ip.Output(0)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !tf.AllClose(run(model), run(restored), 0) {
		t.Fatal("round-tripped model computes differently")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	g, x, probs := buildFrozenMLP(t)
	model, err := Convert(g, []*tf.Node{x}, []*tf.Node{probs}, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	raw := model.Marshal()
	for _, cut := range []int{6, len(raw) / 3, len(raw) - 2} {
		if _, err := Unmarshal(raw[:cut]); err == nil {
			t.Fatalf("truncated model at %d accepted", cut)
		}
	}
}

func TestQuantizedModelSmallerAndClose(t *testing.T) {
	g, x, probs := buildFrozenMLP(t)
	plain, err := Convert(g, []*tf.Node{x}, []*tf.Node{probs}, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	quant, err := Convert(g, []*tf.Node{x}, []*tf.Node{probs}, ConvertOptions{Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	if quant.WeightBytes() >= plain.WeightBytes()/2 {
		t.Fatalf("quantized weights %d not substantially smaller than %d", quant.WeightBytes(), plain.WeightBytes())
	}

	in := tf.RandNormal(tf.Shape{4, 6}, 1, 206)
	want := tfReference(t, g, x, probs, in)
	ip, err := NewInterpreter(quant)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	if err := ip.SetInput(0, in); err != nil {
		t.Fatal(err)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	got, err := ip.Output(0)
	if err != nil {
		t.Fatal(err)
	}
	// Probabilities should survive 8-bit weight quantization reasonably.
	var maxDiff float64
	for i := range want.Floats() {
		d := math.Abs(float64(want.Floats()[i] - got.Floats()[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.05 {
		t.Fatalf("quantized output deviates by %v", maxDiff)
	}
}

func TestConvertRejectsUnfrozenGraph(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float32, tf.Shape{-1, 2})
	w := g.Variable("w", tf.RandNormal(tf.Shape{2, 2}, 1, 1))
	y := g.MatMul(x, w)
	if _, err := Convert(g, []*tf.Node{x}, []*tf.Node{y}, ConvertOptions{}); err == nil {
		t.Fatal("unfrozen graph accepted")
	}
}

func TestInterpreterChargesDevice(t *testing.T) {
	g, x, probs := buildFrozenMLP(t)
	model, err := Convert(g, []*tf.Node{x}, []*tf.Node{probs}, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sgx.NewPlatform("node", sgx.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := p.CreateEnclave(sgx.SyntheticImage("tflite", BinarySize, 1<<20), sgx.ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.NewEnclave("tflite", enclave, 1, 0)
	ip, err := NewInterpreter(model, WithDevice(dev))
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	if err := ip.AllocateTensors(); err != nil {
		t.Fatal(err)
	}
	resident := enclave.ResidentBytes()
	if resident < model.WeightBytes() {
		t.Fatalf("enclave resident %d < model weights %d", resident, model.WeightBytes())
	}
	in := tf.RandNormal(tf.Shape{1, 6}, 1, 207)
	if err := ip.SetInput(0, in); err != nil {
		t.Fatal(err)
	}
	before := p.Clock().Now()
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	if p.Clock().Now() == before {
		t.Fatal("Invoke charged no virtual time")
	}
}

func TestCostScalePropagates(t *testing.T) {
	// A node with cost scale 100 must charge ~100x the flops.
	build := func(scale float64) *Model {
		g := tf.NewGraph()
		x := g.Placeholder("x", tf.Float32, tf.Shape{-1, 8})
		w := g.Variable("w", tf.RandNormal(tf.Shape{8, 8}, 0.2, 201))
		y := g.MatMul(x, w)
		if scale > 0 {
			y.SetCostScale(scale)
		}
		sess := tf.NewSession(g)
		defer sess.Close()
		frozen, err := tf.Freeze(sess, []*tf.Node{y})
		if err != nil {
			t.Fatal(err)
		}
		m, err := Convert(frozen, []*tf.Node{frozen.Node(x.Name())}, []*tf.Node{frozen.Node(y.Name())}, ConvertOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	measure := func(m *Model) int64 {
		p, err := sgx.NewPlatform("n", sgx.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		e, err := p.CreateEnclave(sgx.SyntheticImage("t", 1<<20, 0), sgx.ModeHW)
		if err != nil {
			t.Fatal(err)
		}
		ip, err := NewInterpreter(m, WithDevice(device.NewEnclave("d", e, 1, 0)))
		if err != nil {
			t.Fatal(err)
		}
		defer ip.Close()
		in := tf.RandNormal(tf.Shape{1, 8}, 1, 1)
		if err := ip.SetInput(0, in); err != nil {
			t.Fatal(err)
		}
		if err := ip.Invoke(); err != nil {
			t.Fatal(err)
		}
		return e.Stats().ComputeFLOPs
	}
	base := measure(build(0))
	scaled := measure(build(100))
	if scaled < 50*base {
		t.Fatalf("cost scale not applied: %d vs %d flops", base, scaled)
	}
}
