// Package tflite reimplements the TensorFlow Lite role in secureTF: a
// small-footprint, forward-only interpreter over a compact flat model
// format. The paper's headline inference results (§5.3) hinge on exactly
// this property — a 1.9 MB interpreter binary plus streamed read-only
// weights keep the enclave working set near the EPC limit where the full
// TensorFlow runtime (87.4 MB binary, read-write graph state) thrashes.
//
// Beyond the paper's baseline, the converter implements the §7.2 "model
// optimization" future work: dead-node pruning, operator fusion
// (MatMul+BiasAdd+ReLU → FullyConnected, Conv2D+BiasAdd+ReLU → fused
// convolution) and optional int8 post-training weight quantization.
package tflite

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// BinarySize is the simulated in-enclave footprint of the TensorFlow
// Lite interpreter binary (the paper measures 1.9 MB).
const BinarySize int64 = 19 * (1 << 20) / 10

// TensorType is a model tensor element type.
type TensorType uint8

// Supported tensor types.
const (
	TypeFloat32 TensorType = 1
	TypeInt8    TensorType = 2
)

// OpCode identifies an operator.
type OpCode uint8

// Operators.
const (
	OpFullyConnected OpCode = iota + 1
	OpConv2D
	OpMaxPool
	OpAvgPool
	OpSoftmax
	OpReshape
	OpRelu
	OpAdd
	OpArgMax
)

// String names the opcode.
func (o OpCode) String() string {
	switch o {
	case OpFullyConnected:
		return "FULLY_CONNECTED"
	case OpConv2D:
		return "CONV_2D"
	case OpMaxPool:
		return "MAX_POOL_2D"
	case OpAvgPool:
		return "AVERAGE_POOL_2D"
	case OpSoftmax:
		return "SOFTMAX"
	case OpReshape:
		return "RESHAPE"
	case OpRelu:
		return "RELU"
	case OpAdd:
		return "ADD"
	case OpArgMax:
		return "ARG_MAX"
	default:
		return "UNKNOWN"
	}
}

// Activation is a fused activation function.
type Activation uint8

// Fused activations.
const (
	ActNone Activation = 0
	ActRelu Activation = 1
)

// Padding modes.
const (
	PadValid uint8 = 0
	PadSame  uint8 = 1
)

// TensorSpec describes one tensor slot.
type TensorSpec struct {
	Name   string
	Type   TensorType
	Shape  []int // -1 marks the dynamic batch dimension
	Buffer int   // index into Model.Buffers, or -1 for activations
	Scale  float64
}

// OpSpec is one operator invocation.
type OpSpec struct {
	Code       OpCode
	Inputs     []int
	Outputs    []int
	Activation Activation
	Stride     int
	K          int
	Padding    uint8
	NewShape   []int // Reshape target
	CostScale  float64
}

// Model is a flat, self-contained inference model.
type Model struct {
	Tensors []TensorSpec
	Buffers [][]byte
	Ops     []OpSpec
	Inputs  []int
	Outputs []int
}

// WeightBytes is the total size of the model's weight buffers — the
// number that determines EPC pressure in the paper's Figures 5–7.
func (m *Model) WeightBytes() int64 {
	var total int64
	for _, b := range m.Buffers {
		total += int64(len(b))
	}
	return total
}

var modelMagic = []byte("SLTF1")

// Marshal serializes the model.
func (m *Model) Marshal() []byte {
	var out []byte
	out = append(out, modelMagic...)
	out = appendU32(out, uint32(len(m.Tensors)))
	for _, t := range m.Tensors {
		out = appendStr(out, t.Name)
		out = append(out, byte(t.Type))
		out = appendIntSlice(out, t.Shape)
		out = appendU32(out, uint32(int32(t.Buffer)))
		out = appendU64(out, math.Float64bits(t.Scale))
	}
	out = appendU32(out, uint32(len(m.Buffers)))
	for _, b := range m.Buffers {
		out = appendU32(out, uint32(len(b)))
		out = append(out, b...)
	}
	out = appendU32(out, uint32(len(m.Ops)))
	for _, op := range m.Ops {
		out = append(out, byte(op.Code), byte(op.Activation), op.Padding)
		out = appendU32(out, uint32(op.Stride))
		out = appendU32(out, uint32(op.K))
		out = appendIntSlice(out, op.Inputs)
		out = appendIntSlice(out, op.Outputs)
		out = appendIntSlice(out, op.NewShape)
		out = appendU64(out, math.Float64bits(op.CostScale))
	}
	out = appendIntSlice(out, m.Inputs)
	out = appendIntSlice(out, m.Outputs)
	return out
}

// Unmarshal parses a serialized model.
func Unmarshal(data []byte) (*Model, error) {
	if len(data) < len(modelMagic) || string(data[:len(modelMagic)]) != string(modelMagic) {
		return nil, fmt.Errorf("tflite: bad model magic")
	}
	r := &byteReader{data: data, off: len(modelMagic)}
	m := &Model{}
	nt, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.Tensors = make([]TensorSpec, nt)
	for i := range m.Tensors {
		t := &m.Tensors[i]
		if t.Name, err = r.str(); err != nil {
			return nil, err
		}
		tb, err := r.u8()
		if err != nil {
			return nil, err
		}
		t.Type = TensorType(tb)
		if t.Type != TypeFloat32 && t.Type != TypeInt8 {
			return nil, fmt.Errorf("tflite: tensor %d bad type %d", i, tb)
		}
		if t.Shape, err = r.intSlice(); err != nil {
			return nil, err
		}
		buf, err := r.u32()
		if err != nil {
			return nil, err
		}
		t.Buffer = int(int32(buf))
		bits, err := r.u64()
		if err != nil {
			return nil, err
		}
		t.Scale = math.Float64frombits(bits)
	}
	nb, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.Buffers = make([][]byte, nb)
	for i := range m.Buffers {
		size, err := r.u32()
		if err != nil {
			return nil, err
		}
		if m.Buffers[i], err = r.bytes(int(size)); err != nil {
			return nil, err
		}
	}
	no, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.Ops = make([]OpSpec, no)
	for i := range m.Ops {
		op := &m.Ops[i]
		code, err := r.u8()
		if err != nil {
			return nil, err
		}
		op.Code = OpCode(code)
		act, err := r.u8()
		if err != nil {
			return nil, err
		}
		op.Activation = Activation(act)
		if op.Padding, err = r.u8(); err != nil {
			return nil, err
		}
		stride, err := r.u32()
		if err != nil {
			return nil, err
		}
		op.Stride = int(stride)
		k, err := r.u32()
		if err != nil {
			return nil, err
		}
		op.K = int(k)
		if op.Inputs, err = r.intSlice(); err != nil {
			return nil, err
		}
		if op.Outputs, err = r.intSlice(); err != nil {
			return nil, err
		}
		if op.NewShape, err = r.intSlice(); err != nil {
			return nil, err
		}
		bits, err := r.u64()
		if err != nil {
			return nil, err
		}
		op.CostScale = math.Float64frombits(bits)
	}
	if m.Inputs, err = r.intSlice(); err != nil {
		return nil, err
	}
	if m.Outputs, err = r.intSlice(); err != nil {
		return nil, err
	}
	return m, m.validate()
}

// validate performs structural sanity checks so a corrupted model fails
// loading rather than execution.
func (m *Model) validate() error {
	for i, t := range m.Tensors {
		if t.Buffer >= len(m.Buffers) {
			return fmt.Errorf("tflite: tensor %d references buffer %d of %d", i, t.Buffer, len(m.Buffers))
		}
	}
	checkIdx := func(kind string, idxs []int) error {
		for _, ix := range idxs {
			if ix < 0 || ix >= len(m.Tensors) {
				return fmt.Errorf("tflite: %s tensor index %d out of range", kind, ix)
			}
		}
		return nil
	}
	for _, op := range m.Ops {
		if err := checkIdx("op input", op.Inputs); err != nil {
			return err
		}
		if err := checkIdx("op output", op.Outputs); err != nil {
			return err
		}
	}
	if err := checkIdx("model input", m.Inputs); err != nil {
		return err
	}
	return checkIdx("model output", m.Outputs)
}

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendIntSlice(b []byte, vals []int) []byte {
	b = appendU32(b, uint32(len(vals)))
	for _, v := range vals {
		b = appendU64(b, uint64(int64(v)))
	}
	return b
}

type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) u8() (uint8, error) {
	if r.off+1 > len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *byteReader) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *byteReader) u64() (uint64, error) {
	if r.off+8 > len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, io.ErrUnexpectedEOF
	}
	out := make([]byte, n)
	copy(out, r.data[r.off:])
	r.off += n
	return out, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	return string(b), err
}

func (r *byteReader) intSlice() ([]int, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > (len(r.data)-r.off)/8 {
		return nil, io.ErrUnexpectedEOF
	}
	out := make([]int, n)
	for i := range out {
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		out[i] = int(int64(v))
	}
	return out, nil
}
