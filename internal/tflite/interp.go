package tflite

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/securetf/securetf/internal/device"
	"github.com/securetf/securetf/internal/tf"
)

// Interpreter executes a flat model forward-only, with a preallocated
// weight set and a transient activation arena, charging its work to a
// device. Weights are accessed with the streaming pattern: they are
// read-only and touched sequentially, which is why TensorFlow Lite
// inference degrades gracefully past the EPC limit where the full
// TensorFlow runtime thrashes (paper §5.3 #4).
type Interpreter struct {
	model *Model
	dev   device.Device

	weights   []*tf.Tensor // dequantized scratch view is built lazily per op
	rawInt8   [][]byte     // int8 weights kept resident in quantized form
	scales    []float64
	values    []*tf.Tensor
	allocated bool
	arenaPeak int64
	id        string
}

// Option configures an interpreter.
type Option func(*Interpreter)

// WithDevice charges the interpreter's work to dev.
func WithDevice(dev device.Device) Option {
	return func(ip *Interpreter) { ip.dev = dev }
}

// WithInstanceID namespaces the interpreter's device allocations so
// several interpreters can share one enclave (scale-up experiments).
func WithInstanceID(id string) Option {
	return func(ip *Interpreter) { ip.id = id }
}

// NewInterpreter wraps a model.
func NewInterpreter(m *Model, opts ...Option) (*Interpreter, error) {
	if m == nil {
		return nil, fmt.Errorf("tflite: nil model")
	}
	ip := &Interpreter{
		model:   m,
		weights: make([]*tf.Tensor, len(m.Tensors)),
		rawInt8: make([][]byte, len(m.Tensors)),
		scales:  make([]float64, len(m.Tensors)),
		id:      "tflite",
	}
	for _, o := range opts {
		o(ip)
	}
	if ip.dev == nil {
		ip.dev = device.NewNull()
	}
	return ip, nil
}

// AllocateTensors materializes weight tensors and registers the model's
// residency with the device.
func (ip *Interpreter) AllocateTensors() error {
	if ip.allocated {
		return nil
	}
	var residentBytes int64
	for i, spec := range ip.model.Tensors {
		if spec.Buffer < 0 {
			continue
		}
		raw := ip.model.Buffers[spec.Buffer]
		switch spec.Type {
		case TypeFloat32:
			if len(raw)%4 != 0 {
				return fmt.Errorf("tflite: buffer for %q not float32-aligned", spec.Name)
			}
			vals := make([]float32, len(raw)/4)
			for j := range vals {
				vals[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:]))
			}
			t, err := tf.FromFloats(tf.Shape(spec.Shape), vals)
			if err != nil {
				return fmt.Errorf("tflite: weight %q: %w", spec.Name, err)
			}
			ip.weights[i] = t
			residentBytes += int64(len(raw))
		case TypeInt8:
			// Quantized weights stay resident in int8 form; they are
			// dequantized per use into transient scratch.
			ip.rawInt8[i] = raw
			ip.scales[i] = spec.Scale
			residentBytes += int64(len(raw))
		default:
			return fmt.Errorf("tflite: weight %q has bad type", spec.Name)
		}
	}
	ip.dev.AllocReadOnly(ip.id+"/weights", residentBytes)
	ip.allocated = true
	return nil
}

// Close releases the interpreter's device registrations.
func (ip *Interpreter) Close() {
	ip.dev.Free(ip.id + "/weights")
	ip.dev.Free(ip.id + "/arena")
}

// weight returns the float32 view of weight tensor i, dequantizing int8
// weights into scratch (charged as compute).
func (ip *Interpreter) weight(i int) (*tf.Tensor, error) {
	if w := ip.weights[i]; w != nil {
		return w, nil
	}
	raw := ip.rawInt8[i]
	if raw == nil {
		return nil, fmt.Errorf("tflite: tensor %d is not a weight", i)
	}
	spec := ip.model.Tensors[i]
	vals := make([]float32, len(raw))
	scale := float32(ip.scales[i])
	for j, b := range raw {
		vals[j] = float32(int8(b)) * scale
	}
	ip.dev.Compute(int64(len(raw)))
	t, err := tf.FromFloats(tf.Shape(spec.Shape), vals)
	if err != nil {
		return nil, fmt.Errorf("tflite: weight %q: %w", spec.Name, err)
	}
	return t, nil
}

// SetInput feeds model input slot i.
func (ip *Interpreter) SetInput(i int, t *tf.Tensor) error {
	if i < 0 || i >= len(ip.model.Inputs) {
		return fmt.Errorf("tflite: input %d of %d", i, len(ip.model.Inputs))
	}
	if ip.values == nil {
		ip.values = make([]*tf.Tensor, len(ip.model.Tensors))
	}
	ip.values[ip.model.Inputs[i]] = t
	return nil
}

// Output returns model output slot i after Invoke.
func (ip *Interpreter) Output(i int) (*tf.Tensor, error) {
	if i < 0 || i >= len(ip.model.Outputs) {
		return nil, fmt.Errorf("tflite: output %d of %d", i, len(ip.model.Outputs))
	}
	v := ip.values[ip.model.Outputs[i]]
	if v == nil {
		return nil, fmt.Errorf("tflite: output %d not computed; call Invoke", i)
	}
	return v, nil
}

// Invoke runs the model over the current inputs.
func (ip *Interpreter) Invoke() error {
	if !ip.allocated {
		if err := ip.AllocateTensors(); err != nil {
			return err
		}
	}
	if ip.values == nil {
		return fmt.Errorf("tflite: no inputs set")
	}
	var arena int64
	for oi := range ip.model.Ops {
		op := &ip.model.Ops[oi]
		out, err := ip.run(op)
		if err != nil {
			return fmt.Errorf("tflite: op %d (%s): %w", oi, op.Code, err)
		}
		ip.values[op.Outputs[0]] = out
		arena += out.Bytes()
	}
	if arena > ip.arenaPeak {
		ip.arenaPeak = arena
		ip.dev.Alloc(ip.id+"/arena", arena)
	}
	return nil
}

// value fetches an activation or weight as float32.
func (ip *Interpreter) value(i int) (*tf.Tensor, error) {
	if v := ip.values[i]; v != nil {
		return v, nil
	}
	return ip.weight(i)
}

// charge reports one op's work. CostScale applies to FLOPs only: memory
// traffic is the real bytes moved (see tf.Node.SetCostScale).
func (ip *Interpreter) charge(op *OpSpec, flops int64, activationBytes, weightBytes int64) {
	scale := op.CostScale
	if scale <= 0 {
		scale = 1
	}
	ip.dev.Compute(int64(float64(flops) * scale))
	if activationBytes > 0 {
		ip.dev.Access(activationBytes, false)
	}
	if weightBytes > 0 {
		ip.dev.Access(weightBytes, true)
	}
}

func (ip *Interpreter) run(op *OpSpec) (*tf.Tensor, error) {
	switch op.Code {
	case OpFullyConnected:
		return ip.runFullyConnected(op)
	case OpConv2D:
		return ip.runConv2D(op)
	case OpMaxPool, OpAvgPool:
		return ip.runPool(op)
	case OpSoftmax:
		return ip.runSoftmax(op)
	case OpReshape:
		return ip.runReshape(op)
	case OpRelu:
		return ip.runRelu(op)
	case OpAdd:
		return ip.runAdd(op)
	case OpArgMax:
		return ip.runArgMax(op)
	default:
		return nil, fmt.Errorf("unknown opcode %d", op.Code)
	}
}

func applyActivation(act Activation, vals []float32) {
	if act == ActRelu {
		for i, v := range vals {
			if v < 0 {
				vals[i] = 0
			}
		}
	}
}

func (ip *Interpreter) runFullyConnected(op *OpSpec) (*tf.Tensor, error) {
	x, err := ip.value(op.Inputs[0])
	if err != nil {
		return nil, err
	}
	w, err := ip.weight(op.Inputs[1])
	if err != nil {
		return nil, err
	}
	xs, ws := x.Shape(), w.Shape()
	if len(xs) != 2 || len(ws) != 2 || xs[1] != ws[0] {
		return nil, fmt.Errorf("shapes %v x %v", xs, ws)
	}
	m, k, n := xs[0], xs[1], ws[1]
	out := tf.NewTensor(tf.Float32, tf.Shape{m, n})
	xd, wd, od := x.Floats(), w.Floats(), out.Floats()
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			xv := xd[i*k+kk]
			if xv == 0 {
				continue
			}
			wrow := wd[kk*n : (kk+1)*n]
			orow := od[i*n : (i+1)*n]
			for j, wv := range wrow {
				orow[j] += xv * wv
			}
		}
	}
	if len(op.Inputs) > 2 {
		b, err := ip.weight(op.Inputs[2])
		if err != nil {
			return nil, err
		}
		bd := b.Floats()
		for i := 0; i < m; i++ {
			orow := od[i*n : (i+1)*n]
			for j := range orow {
				orow[j] += bd[j]
			}
		}
	}
	applyActivation(op.Activation, od)
	ip.charge(op, 2*int64(m)*int64(k)*int64(n), x.Bytes()+out.Bytes(), w.Bytes())
	return out, nil
}

func (ip *Interpreter) runConv2D(op *OpSpec) (*tf.Tensor, error) {
	x, err := ip.value(op.Inputs[0])
	if err != nil {
		return nil, err
	}
	f, err := ip.weight(op.Inputs[1])
	if err != nil {
		return nil, err
	}
	xs, fs := x.Shape(), f.Shape()
	if len(xs) != 4 || len(fs) != 4 || xs[3] != fs[2] {
		return nil, fmt.Errorf("shapes %v, %v", xs, fs)
	}
	batch, h, w, cin := xs[0], xs[1], xs[2], xs[3]
	kh, kw, cout := fs[0], fs[1], fs[3]
	stride := op.Stride
	if stride < 1 {
		stride = 1
	}
	var oh, ow, padTop, padLeft int
	if op.Padding == PadSame {
		oh = (h + stride - 1) / stride
		ow = (w + stride - 1) / stride
		padH := maxInt(0, (oh-1)*stride+kh-h)
		padW := maxInt(0, (ow-1)*stride+kw-w)
		padTop, padLeft = padH/2, padW/2
	} else {
		oh = (h-kh)/stride + 1
		ow = (w-kw)/stride + 1
	}
	out := tf.NewTensor(tf.Float32, tf.Shape{batch, oh, ow, cout})
	xd, fd, od := x.Floats(), f.Floats(), out.Floats()
	for b := 0; b < batch; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				outBase := ((b*oh+oy)*ow + ox) * cout
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride + ky - padTop
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride + kx - padLeft
						if ix < 0 || ix >= w {
							continue
						}
						inBase := ((b*h+iy)*w + ix) * cin
						fBase := (ky*kw + kx) * cin * cout
						for cc := 0; cc < cin; cc++ {
							xv := xd[inBase+cc]
							if xv == 0 {
								continue
							}
							frow := fd[fBase+cc*cout : fBase+(cc+1)*cout]
							orow := od[outBase : outBase+cout]
							for j, fv := range frow {
								orow[j] += xv * fv
							}
						}
					}
				}
			}
		}
	}
	if len(op.Inputs) > 2 {
		bt, err := ip.weight(op.Inputs[2])
		if err != nil {
			return nil, err
		}
		bd := bt.Floats()
		for i := range od {
			od[i] += bd[i%cout]
		}
	}
	applyActivation(op.Activation, od)
	flops := 2 * int64(batch) * int64(oh) * int64(ow) * int64(cout) * int64(kh) * int64(kw) * int64(cin)
	ip.charge(op, flops, x.Bytes()+out.Bytes(), f.Bytes())
	return out, nil
}

func (ip *Interpreter) runPool(op *OpSpec) (*tf.Tensor, error) {
	x, err := ip.value(op.Inputs[0])
	if err != nil {
		return nil, err
	}
	xs := x.Shape()
	if len(xs) != 4 {
		return nil, fmt.Errorf("pool needs NHWC, got %v", xs)
	}
	batch, h, w, c := xs[0], xs[1], xs[2], xs[3]
	k, stride := op.K, op.Stride
	if k < 1 {
		k = 2
	}
	if stride < 1 {
		stride = k
	}
	oh := (h-k)/stride + 1
	ow := (w-k)/stride + 1
	out := tf.NewTensor(tf.Float32, tf.Shape{batch, oh, ow, c})
	xd, od := x.Floats(), out.Floats()
	for b := 0; b < batch; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for cc := 0; cc < c; cc++ {
					var acc float32
					if op.Code == OpMaxPool {
						acc = float32(math.Inf(-1))
					}
					count := 0
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky
						if iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx
							if ix >= w {
								continue
							}
							v := xd[((b*h+iy)*w+ix)*c+cc]
							if op.Code == OpMaxPool {
								if v > acc {
									acc = v
								}
							} else {
								acc += v
							}
							count++
						}
					}
					if op.Code == OpAvgPool && count > 0 {
						acc /= float32(count)
					}
					od[((b*oh+oy)*ow+ox)*c+cc] = acc
				}
			}
		}
	}
	ip.charge(op, int64(out.NumElements())*int64(k*k), x.Bytes()+out.Bytes(), 0)
	return out, nil
}

func (ip *Interpreter) runSoftmax(op *OpSpec) (*tf.Tensor, error) {
	x, err := ip.value(op.Inputs[0])
	if err != nil {
		return nil, err
	}
	s := x.Shape()
	cols := s[len(s)-1]
	rows := x.NumElements() / cols
	out := tf.NewTensor(tf.Float32, s)
	xd, od := x.Floats(), out.Floats()
	for r := 0; r < rows; r++ {
		row := xd[r*cols : (r+1)*cols]
		orow := od[r*cols : (r+1)*cols]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxv))
			orow[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range orow {
			orow[i] *= inv
		}
	}
	ip.charge(op, 4*int64(x.NumElements()), 2*x.Bytes(), 0)
	return out, nil
}

func (ip *Interpreter) runReshape(op *OpSpec) (*tf.Tensor, error) {
	x, err := ip.value(op.Inputs[0])
	if err != nil {
		return nil, err
	}
	return x.Reshape(tf.Shape(op.NewShape))
}

func (ip *Interpreter) runRelu(op *OpSpec) (*tf.Tensor, error) {
	x, err := ip.value(op.Inputs[0])
	if err != nil {
		return nil, err
	}
	out := x.Clone()
	applyActivation(ActRelu, out.Floats())
	ip.charge(op, int64(x.NumElements()), 2*x.Bytes(), 0)
	return out, nil
}

func (ip *Interpreter) runAdd(op *OpSpec) (*tf.Tensor, error) {
	a, err := ip.value(op.Inputs[0])
	if err != nil {
		return nil, err
	}
	b, err := ip.value(op.Inputs[1])
	if err != nil {
		return nil, err
	}
	if a.NumElements() != b.NumElements() {
		return nil, fmt.Errorf("Add: %d vs %d elements", a.NumElements(), b.NumElements())
	}
	out := tf.NewTensor(tf.Float32, a.Shape())
	ad, bd, od := a.Floats(), b.Floats(), out.Floats()
	for i := range od {
		od[i] = ad[i] + bd[i]
	}
	ip.charge(op, int64(a.NumElements()), 3*a.Bytes(), 0)
	return out, nil
}

func (ip *Interpreter) runArgMax(op *OpSpec) (*tf.Tensor, error) {
	x, err := ip.value(op.Inputs[0])
	if err != nil {
		return nil, err
	}
	s := x.Shape()
	cols := s[len(s)-1]
	rows := x.NumElements() / cols
	out := tf.NewTensor(tf.Int32, tf.Shape{rows})
	xd := x.Floats()
	for r := 0; r < rows; r++ {
		best, bestIdx := xd[r*cols], 0
		for c := 1; c < cols; c++ {
			if v := xd[r*cols+c]; v > best {
				best, bestIdx = v, c
			}
		}
		out.Ints()[r] = int32(bestIdx)
	}
	ip.charge(op, int64(x.NumElements()), x.Bytes(), 0)
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
