package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestElasticScalingShape(t *testing.T) {
	const wave = 3
	casTotal, iasTotal, err := ElasticScaling(wave)
	if err != nil {
		t.Fatal(err)
	}
	// Challenge ➍'s shape: the CAS makes autoscaling practical — an
	// order of magnitude faster than the WAN-bound IAS, and a few tens
	// of milliseconds per container.
	if casTotal >= iasTotal/10 {
		t.Fatalf("CAS wave %v not ≫ faster than IAS wave %v", casTotal, iasTotal)
	}
	perContainer := casTotal / wave
	if perContainer <= 0 || perContainer > 100*time.Millisecond {
		t.Fatalf("CAS per-container attestation %v outside the tens-of-ms band", perContainer)
	}
	if iasTotal/wave < 200*time.Millisecond {
		t.Fatalf("IAS per-container attestation %v below the WAN floor", iasTotal/wave)
	}

	var buf bytes.Buffer
	PrintElasticScaling(&buf, wave, casTotal, iasTotal)
	for _, want := range []string{"Elastic scaling", "IAS", "secureTF CAS", "speedup"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("print output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestElasticScalingValidation(t *testing.T) {
	if _, _, err := ElasticScaling(0); err == nil {
		t.Fatal("zero-container wave accepted")
	}
}
