package experiments

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/models"
	"github.com/securetf/securetf/internal/seccrypto"
	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tf/dist"
)

// Fig8Row is one point of Figure 8: end-to-end distributed training
// latency for a system at a worker count.
type Fig8Row struct {
	System    string
	Workers   int
	Steps     int
	Latency   time.Duration
	FinalLoss float64
}

// fig8System describes one Figure 8 series.
type fig8System struct {
	label string
	kind  core.RuntimeKind
	tls   bool
}

func fig8Systems() []fig8System {
	return []fig8System{
		{"Native", core.RuntimeNativeGlibc, false},
		{"secureTF SIM w/o TLS", core.RuntimeSconeSIM, false},
		{"secureTF SIM", core.RuntimeSconeSIM, true},
		{"secureTF HW w/o TLS", core.RuntimeSconeHW, false},
		{"secureTF HW", core.RuntimeSconeHW, true},
	}
}

// Figure8 reproduces the distributed training experiment (paper Fig. 8):
// synchronous data-parallel SGD on MNIST (batch 100, lr 0.0005) with
// 1/2/3 workers, across native, SIM and HW modes with and without the
// network shield. The paper's headline shapes: HW ≈ 14× native, SIM ≈ 6×
// with TLS and ≈ 2.3× without, and near-linear scaling with workers
// (speedups 1.96× and 2.57×).
func Figure8(cfg Config) ([]Fig8Row, error) {
	cfg = cfg.withDefaults()
	var rows []Fig8Row
	for _, sys := range fig8Systems() {
		for _, workers := range []int{1, 2, 3} {
			latency, loss, err := fig8Run(cfg, sys, workers)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig8 %s workers=%d: %w", sys.label, workers, err)
			}
			cfg.logf("fig8: %-22s workers=%d %9.2f s (loss %.3f)", sys.label, workers, latency.Seconds(), loss)
			rows = append(rows, Fig8Row{
				System: sys.label, Workers: workers, Steps: cfg.Steps,
				Latency: latency, FinalLoss: loss,
			})
		}
	}
	return rows, nil
}

// fig8Run trains for cfg.Steps synchronous rounds. Each worker processes
// its own shard; the total dataset size is fixed, so more workers means
// smaller shards and (with synchronized rounds) the same global progress
// per step at less per-node wall time — the source of the speedup.
func fig8Run(cfg Config, sys fig8System, workers int) (time.Duration, float64, error) {
	// TLS material for the shielded variants.
	var ca *seccrypto.CA
	var err error
	if sys.tls {
		ca, err = seccrypto.NewCA("fig8-ca")
		if err != nil {
			return 0, 0, err
		}
	}

	// Parameter-server node.
	psPlatform, err := newPlatform("ps-node")
	if err != nil {
		return 0, 0, err
	}
	psContainer, err := core.Launch(core.Config{
		Kind:     sys.kind,
		Platform: psPlatform,
		Image:    TFFullImage(),
		HostFS:   fsapi.NewMem(),
	})
	if err != nil {
		return 0, 0, err
	}
	defer psContainer.Close()
	if sys.tls {
		cert, err := ca.Issue("ps", "localhost", "127.0.0.1")
		if err != nil {
			return 0, 0, err
		}
		if err := psContainer.UseIdentity(cert, ca, true); err != nil {
			return 0, 0, err
		}
	}
	psListener, err := psContainer.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}

	ref := models.MNISTCNN(1)
	initialVars := dist.InitialVars(ref.Graph)
	var varBytes int64
	for _, v := range initialVars {
		varBytes += v.Bytes()
	}
	if e := psContainer.Enclave(); e != nil {
		e.Alloc("ps/vars", varBytes)
	}
	psDev := psContainer.Device(1)
	ps, err := dist.NewParameterServer(dist.PSConfig{
		Listener: psListener,
		Vars:     initialVars,
		Workers:  workers,
		LR:       0.0005,
		Clock:    psPlatform.Clock(),
		Params:   psPlatform.Params(),
		ApplyMeter: func(flops, bytes int64) {
			psDev.Compute(flops)
			psDev.Access(bytes, false)
		},
	})
	if err != nil {
		return 0, 0, err
	}
	defer ps.Close()

	// Worker nodes. The training task is fixed (cfg.Steps rounds of
	// cfg.BatchSize samples at one worker); N workers split it into
	// ceil(Steps/N) synchronous rounds of N·BatchSize global samples —
	// the source of the near-linear speedup the paper reports.
	rounds := (cfg.Steps + workers - 1) / workers
	losses := make([]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			losses[w], errs[w] = fig8Worker(cfg, sys, ca, psListener.Addr().String(), w, rounds)
		}(w)
	}
	wg.Wait()
	var finalLoss float64
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return 0, 0, errs[w]
		}
		finalLoss += losses[w]
	}
	finalLoss /= float64(workers)

	// The PS clock is causally synchronized with every worker through the
	// message stamps, so it carries the end-to-end latency.
	return psPlatform.Clock().Now(), finalLoss, nil
}

func fig8Worker(cfg Config, sys fig8System, ca *seccrypto.CA, addr string, id, rounds int) (float64, error) {
	platform, err := newPlatform(fmt.Sprintf("worker-node-%d", id))
	if err != nil {
		return 0, err
	}
	container, err := core.Launch(core.Config{
		Kind:     sys.kind,
		Platform: platform,
		Image:    TFFullImage(),
		HostFS:   fsapi.NewMem(),
	})
	if err != nil {
		return 0, err
	}
	defer container.Close()
	if sys.tls {
		cert, err := ca.Issue(fmt.Sprintf("worker-%d", id))
		if err != nil {
			return 0, err
		}
		if err := container.UseIdentity(cert, ca, false); err != nil {
			return 0, err
		}
	}

	// Shard: each worker holds the samples for its rounds.
	shard := cfg.BatchSize * rounds
	xs, ys := syntheticMNISTShard(shard, int64(100+id))

	h := models.MNISTCNN(1) // same initials on every replica
	worker, err := dist.NewWorker(dist.WorkerConfig{
		ID:   id,
		Addr: addr,
		Dial: func(network, a string) (net.Conn, error) { return container.Dial(network, a, "ps") },
		Model: dist.Model{
			Graph: h.Graph, X: h.X, Y: h.Y, Loss: h.Loss, Logits: h.Logits,
		},
		XS: xs, YS: ys,
		BatchSize: cfg.BatchSize,
		Device:    container.Device(0),
		Clock:     platform.Clock(),
		Params:    platform.Params(),
	})
	if err != nil {
		return 0, err
	}
	defer worker.Close()
	if err := worker.RunSteps(rounds); err != nil {
		return 0, err
	}
	return worker.LastLoss, nil
}

// syntheticMNISTShard builds an in-memory learnable MNIST-like shard
// without file I/O (the Figure 8 subject is training, not loading).
func syntheticMNISTShard(n int, seed int64) (*tf.Tensor, *tf.Tensor) {
	xs := tf.RandNormal(tf.Shape{n, 28, 28, 1}, 0.1, seed)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 10
		labels[i] = cls
		// Bright class-dependent row band.
		row := cls*2 + 4
		for x := 0; x < 28; x++ {
			xs.Floats()[(i*28+row)*28+x] += 1
		}
	}
	return xs, tf.OneHot(labels, 10)
}

// PrintFigure8 renders the rows.
func PrintFigure8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8 — distributed training latency (s)")
	fmt.Fprintf(w, "%-24s %8s %6s %12s %10s\n", "system", "workers", "steps", "latency(s)", "loss")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %8d %6d %12s %10.3f\n", r.System, r.Workers, r.Steps, fmtDurS(r.Latency), r.FinalLoss)
	}
}
