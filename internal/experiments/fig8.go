package experiments

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/models"
	"github.com/securetf/securetf/internal/seccrypto"
	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tf/dist"
)

// Fig8Row is one point of Figure 8: end-to-end distributed training
// latency for a system at a worker count.
type Fig8Row struct {
	System    string
	Workers   int
	Steps     int
	Latency   time.Duration
	FinalLoss float64
}

// fig8System describes one Figure 8 series.
type fig8System struct {
	label string
	kind  core.RuntimeKind
	tls   bool
}

func fig8Systems() []fig8System {
	return []fig8System{
		{"Native", core.RuntimeNativeGlibc, false},
		{"secureTF SIM w/o TLS", core.RuntimeSconeSIM, false},
		{"secureTF SIM", core.RuntimeSconeSIM, true},
		{"secureTF HW w/o TLS", core.RuntimeSconeHW, false},
		{"secureTF HW", core.RuntimeSconeHW, true},
	}
}

// Figure8 reproduces the distributed training experiment (paper Fig. 8):
// synchronous data-parallel SGD on MNIST (batch 100, lr 0.0005) with
// 1/2/3 workers, across native, SIM and HW modes with and without the
// network shield. The paper's headline shapes: HW ≈ 14× native, SIM ≈ 6×
// with TLS and ≈ 2.3× without, and near-linear scaling with workers
// (speedups 1.96× and 2.57×).
func Figure8(cfg Config) ([]Fig8Row, error) {
	cfg = cfg.withDefaults()
	var rows []Fig8Row
	for _, sys := range fig8Systems() {
		for _, workers := range []int{1, 2, 3} {
			stats, err := fig8Run(cfg, sys, workers, 1, dist.NoCompression())
			if err != nil {
				return nil, fmt.Errorf("experiments: fig8 %s workers=%d: %w", sys.label, workers, err)
			}
			cfg.logf("fig8: %-22s workers=%d %9.2f s (loss %.3f)", sys.label, workers, stats.Latency.Seconds(), stats.FinalLoss)
			rows = append(rows, Fig8Row{
				System: sys.label, Workers: workers, Steps: cfg.Steps,
				Latency: stats.Latency, FinalLoss: stats.FinalLoss,
			})
		}
	}
	return rows, nil
}

// Fig8ShardRow is one point of the parameter-server shard sweep: the
// same training job with its variables hash-partitioned across Shards
// parameter-server nodes.
type Fig8ShardRow struct {
	System  string
	Workers int
	Shards  int
	Steps   int
	Latency time.Duration
	// PushWirePerShard is the mean per-shard, per-round virtual wire
	// time of the gradient pushes — the single-PS bandwidth bottleneck
	// sharding attacks. It shrinks as ~1/Shards because each shard's
	// link carries only its partition of every worker's gradients.
	PushWirePerShard time.Duration
	FinalLoss        float64
	// Speedup1W is this row's latency advantage over the 1-worker,
	// 1-shard baseline of the same system (the paper's scaling axis).
	Speedup1W float64
}

// Figure8Shards extends Figure 8 along the sharding axis the paper's
// §3.2/§5.4 architecture assumes: 1- and 2-worker baselines on a single
// PS (the classic speedup), then a fixed 4-worker job with the
// parameter server sharded across 1, 2 and 4 nodes. The headline shape:
// per-shard push wire time drops monotonically as shards are added,
// because each PS node receives only its name-hash partition of every
// worker's ~1.8 MB gradient push.
func Figure8Shards(cfg Config) ([]Fig8ShardRow, error) {
	cfg = cfg.withDefaults()
	sys := fig8System{"secureTF HW", core.RuntimeSconeHW, true}
	var rows []Fig8ShardRow
	var base time.Duration
	for _, point := range []struct{ workers, shards int }{
		{1, 1}, {2, 1}, {4, 1}, {4, 2}, {4, 4},
	} {
		stats, err := fig8Run(cfg, sys, point.workers, point.shards, dist.NoCompression())
		if err != nil {
			return nil, fmt.Errorf("experiments: fig8 shards %s workers=%d shards=%d: %w",
				sys.label, point.workers, point.shards, err)
		}
		if base == 0 {
			base = stats.Latency
		}
		row := Fig8ShardRow{
			System: sys.label, Workers: point.workers, Shards: point.shards, Steps: cfg.Steps,
			Latency: stats.Latency, PushWirePerShard: stats.PushWirePerShard,
			FinalLoss: stats.FinalLoss, Speedup1W: float64(base) / float64(stats.Latency),
		}
		cfg.logf("fig8-shards: %-22s workers=%d shards=%d %9.2f s (push wire/shard %v, speedup %.2fx)",
			sys.label, point.workers, point.shards, stats.Latency.Seconds(), stats.PushWirePerShard, row.Speedup1W)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure8Shards renders the shard-sweep rows.
func PrintFigure8Shards(w io.Writer, rows []Fig8ShardRow) {
	fmt.Fprintln(w, "Figure 8 (sharded PS) — distributed training with a sharded parameter server")
	fmt.Fprintf(w, "%-24s %8s %7s %6s %12s %16s %10s\n", "system", "workers", "shards", "steps", "latency(s)", "push-wire/shard", "loss")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %8d %7d %6d %12s %16s %10.3f\n",
			r.System, r.Workers, r.Shards, r.Steps, fmtDurS(r.Latency), r.PushWirePerShard, r.FinalLoss)
	}
}

// fig8Run trains for cfg.Steps synchronous rounds against a parameter
// server sharded across `shards` nodes. Each worker processes its own
// data shard; the total dataset size is fixed, so more workers means
// smaller shards and (with synchronized rounds) the same global progress
// per step at less per-node wall time — the source of the speedup. More
// PS shards fan the same parameter traffic across more nodes, shrinking
// the per-shard wire time that bottlenecks the single-PS deployment.
// comp selects the push-path gradient codec (NoCompression for the
// classic runs); it is wired into every shard and worker so the
// handshakes agree.
func fig8Run(cfg Config, sys fig8System, workers, shards int, comp dist.Compression) (fig8Stats, error) {
	// TLS material for the shielded variants.
	var ca *seccrypto.CA
	var err error
	if sys.tls {
		ca, err = seccrypto.NewCA("fig8-ca")
		if err != nil {
			return fig8Stats{}, err
		}
	}

	// Parameter-server shard nodes, one enclave each.
	ref := models.MNISTCNN(1)
	initialVars := dist.InitialVars(ref.Graph)
	psPlatforms := make([]*sgx.Platform, shards)
	addrs := make([]string, shards)
	for s := 0; s < shards; s++ {
		psPlatform, err := newPlatform(fmt.Sprintf("ps-node-%d", s))
		if err != nil {
			return fig8Stats{}, err
		}
		psPlatforms[s] = psPlatform
		psContainer, err := core.Launch(core.Config{
			Kind:     sys.kind,
			Platform: psPlatform,
			Image:    TFFullImage(),
			HostFS:   fsapi.NewMem(),
		})
		if err != nil {
			return fig8Stats{}, err
		}
		defer psContainer.Close()
		if sys.tls {
			cert, err := ca.Issue(fmt.Sprintf("ps-%d", s), "ps", "localhost", "127.0.0.1")
			if err != nil {
				return fig8Stats{}, err
			}
			if err := psContainer.UseIdentity(cert, ca, true); err != nil {
				return fig8Stats{}, err
			}
		}
		psListener, err := psContainer.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fig8Stats{}, err
		}
		var varBytes int64
		for _, v := range dist.ShardVars(initialVars, s, shards) {
			varBytes += v.Bytes()
		}
		if e := psContainer.Enclave(); e != nil {
			e.Alloc("ps/vars", varBytes)
		}
		psDev := psContainer.Device(1)
		ps, err := dist.NewParameterServer(dist.PSConfig{
			Listener:    psListener,
			Vars:        initialVars,
			Workers:     workers,
			LR:          0.0005,
			Clock:       psPlatform.Clock(),
			Params:      psPlatform.Params(),
			Shard:       s,
			Shards:      shards,
			Compression: comp,
			ApplyMeter: func(flops, bytes int64) {
				psDev.Compute(flops)
				psDev.Access(bytes, false)
			},
		})
		if err != nil {
			return fig8Stats{}, err
		}
		defer ps.Close()
		addrs[s] = psListener.Addr().String()
	}

	// Worker nodes. The training task is fixed (cfg.Steps rounds of
	// cfg.BatchSize samples at one worker); N workers split it into
	// ceil(Steps/N) synchronous rounds of N·BatchSize global samples —
	// the source of the near-linear speedup the paper reports.
	rounds := (cfg.Steps + workers - 1) / workers
	results := make([]fig8WorkerStats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = fig8Worker(cfg, sys, ca, addrs, w, rounds, comp)
		}(w)
	}
	wg.Wait()
	var stats fig8Stats
	var pushWire time.Duration
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return fig8Stats{}, errs[w]
		}
		stats.FinalLoss += results[w].loss
		pushWire += results[w].pushWire
		stats.PushBytes += results[w].pushBytes
		if results[w].clock > stats.Latency {
			stats.Latency = results[w].clock
		}
	}
	stats.FinalLoss /= float64(workers)
	// Mean per-shard, per-round wire time of the gradient pushes: the
	// bytes each PS shard's link carries per round. This is the
	// bandwidth bottleneck sharding attacks — it shrinks as ~1/shards.
	stats.PushWirePerShard = pushWire / time.Duration(shards*rounds)
	// Mean wire bytes of one worker's full gradient push per round
	// (summed over shards) — the quantity the codec shrinks.
	stats.PushBytesPerRound = stats.PushBytes / int64(workers*rounds)

	// End-to-end latency: message stamps keep every clock causally
	// consistent, so the job finishes at the maximum over all nodes.
	for _, p := range psPlatforms {
		if t := p.Clock().Now(); t > stats.Latency {
			stats.Latency = t
		}
	}
	return stats, nil
}

// fig8Stats aggregates one fig8 run.
type fig8Stats struct {
	Latency           time.Duration
	FinalLoss         float64
	PushWirePerShard  time.Duration
	PushBytes         int64 // total push frame bytes, all workers/shards/rounds
	PushBytesPerRound int64 // mean per worker per round, summed over shards
}

// fig8WorkerStats is one worker's contribution.
type fig8WorkerStats struct {
	loss      float64
	pushWire  time.Duration // summed over shards and rounds
	pushBytes int64         // summed over shards and rounds
	clock     time.Duration
}

func fig8Worker(cfg Config, sys fig8System, ca *seccrypto.CA, addrs []string, id, rounds int, comp dist.Compression) (fig8WorkerStats, error) {
	platform, err := newPlatform(fmt.Sprintf("worker-node-%d", id))
	if err != nil {
		return fig8WorkerStats{}, err
	}
	container, err := core.Launch(core.Config{
		Kind:     sys.kind,
		Platform: platform,
		Image:    TFFullImage(),
		HostFS:   fsapi.NewMem(),
	})
	if err != nil {
		return fig8WorkerStats{}, err
	}
	defer container.Close()
	if sys.tls {
		cert, err := ca.Issue(fmt.Sprintf("worker-%d", id))
		if err != nil {
			return fig8WorkerStats{}, err
		}
		if err := container.UseIdentity(cert, ca, false); err != nil {
			return fig8WorkerStats{}, err
		}
	}

	// Shard: each worker holds the samples for its rounds.
	shard := cfg.BatchSize * rounds
	xs, ys := syntheticMNISTShard(shard, int64(100+id))

	h := models.MNISTCNN(1) // same initials on every replica
	worker, err := dist.NewWorker(dist.WorkerConfig{
		ID:    id,
		Addrs: addrs,
		Dial:  func(network, a string) (net.Conn, error) { return container.Dial(network, a, "ps") },
		Model: dist.Model{
			Graph: h.Graph, X: h.X, Y: h.Y, Loss: h.Loss, Logits: h.Logits,
		},
		XS: xs, YS: ys,
		BatchSize:   cfg.BatchSize,
		Device:      container.Device(0),
		Clock:       platform.Clock(),
		Params:      platform.Params(),
		Compression: comp,
	})
	if err != nil {
		return fig8WorkerStats{}, err
	}
	defer worker.Close()
	if err := worker.RunSteps(rounds); err != nil {
		return fig8WorkerStats{}, err
	}
	stats := fig8WorkerStats{loss: worker.LastLoss, clock: platform.Clock().Now()}
	for _, d := range worker.PushWire() {
		stats.pushWire += d
	}
	for _, n := range worker.PushBytes() {
		stats.pushBytes += n
	}
	return stats, nil
}

// syntheticMNISTShard builds an in-memory learnable MNIST-like shard
// without file I/O (the Figure 8 subject is training, not loading).
func syntheticMNISTShard(n int, seed int64) (*tf.Tensor, *tf.Tensor) {
	xs := tf.RandNormal(tf.Shape{n, 28, 28, 1}, 0.1, seed)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 10
		labels[i] = cls
		// Bright class-dependent row band.
		row := cls*2 + 4
		for x := 0; x < 28; x++ {
			xs.Floats()[(i*28+row)*28+x] += 1
		}
	}
	return xs, tf.OneHot(labels, 10)
}

// PrintFigure8 renders the rows.
func PrintFigure8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8 — distributed training latency (s)")
	fmt.Fprintf(w, "%-24s %8s %6s %12s %10s\n", "system", "workers", "steps", "latency(s)", "loss")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %8d %6d %12s %10.3f\n", r.System, r.Workers, r.Steps, fmtDurS(r.Latency), r.FinalLoss)
	}
}
