package experiments

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/models"
	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tf/dist"
)

// Fig8AsyncRow is one point of the bounded-staleness sweep: the same
// fixed global step budget trained under one consistency policy, with
// one deliberately slow worker in the cluster.
type Fig8AsyncRow struct {
	// Policy labels the row: "sync" or "async K=…".
	Policy string
	// K is the async staleness bound (-1 unbounded); meaningless for
	// the sync row.
	K       int
	Workers int
	Shards  int
	// Steps is the global step budget — the total number of applied
	// worker steps, identical for every row so throughput is
	// comparable.
	Steps int
	// Latency is the end-to-end virtual time of the job (maximum over
	// all node clocks).
	Latency time.Duration
	// Throughput is Steps per virtual second — the axis async exists
	// to lift: without barriers the straggler stops gating its peers.
	Throughput float64
	// FinalLoss is the loss of the final parameter-server variables on
	// a held-out deterministic batch, the convergence cost of the
	// throughput win.
	FinalLoss float64
	// Retries counts pushes rejected by the staleness bound and
	// retried (always 0 for sync and K = ∞).
	Retries int
}

// stragglerPenalty is the extra virtual compute charged to worker 0
// inside each of its steps, between the pull/compute and the push —
// many times a healthy step's cost, so synchronous rounds are clearly
// gated by it. Charging it mid-step matters: the straggler's pull
// happens at a normal time (so it does not drag the parameter server's
// causal clock forward), but its push — the event everyone else could
// wait on — lands late.
const stragglerPenalty = 10 * time.Second

// Figure8Async extends Figure 8 along the consistency axis: 4 workers,
// a 2-shard parameter server, one straggler, and a fixed global step
// budget trained synchronously and then asynchronously at staleness
// bounds K ∈ {0, 2, 8, ∞}. The headline shape: every async point
// clears the sync baseline's virtual-time throughput, because
// apply-on-push removes the straggler from everyone else's critical
// path, while bounded K keeps the final loss within a few percent of
// the synchronous optimizer (each async contribution is scaled by
// LR/Workers, so async is a relaxation of the same update rule).
func Figure8Async(cfg Config) ([]Fig8AsyncRow, error) {
	cfg = cfg.withDefaults()
	const workers, shards = 4, 2
	budget := workers * cfg.Steps
	points := []struct {
		label string
		k     int
		sync  bool
	}{
		{"sync", 0, true},
		{"async K=0", 0, false},
		{"async K=2", 2, false},
		{"async K=8", 8, false},
		{"async K=inf", -1, false},
	}
	var rows []Fig8AsyncRow
	for _, point := range points {
		policy := dist.Async(point.k)
		if point.sync {
			policy = dist.Sync()
		}
		stats, err := fig8AsyncRun(cfg, workers, shards, budget, policy)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig8 async %s: %w", point.label, err)
		}
		row := Fig8AsyncRow{
			Policy: point.label, K: point.k, Workers: workers, Shards: shards,
			Steps: budget, Latency: stats.latency,
			Throughput: float64(budget) / stats.latency.Seconds(),
			FinalLoss:  stats.loss, Retries: stats.retries,
		}
		cfg.logf("fig8-async: %-12s %2d workers %9.2f s  %6.3f steps/s (loss %.4f, %d retries)",
			row.Policy, row.Workers, row.Latency.Seconds(), row.Throughput, row.FinalLoss, row.Retries)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure8Async renders the consistency-sweep rows.
func PrintFigure8Async(w io.Writer, rows []Fig8AsyncRow) {
	fmt.Fprintln(w, "Figure 8 (async PS) — bounded-staleness training with a straggler")
	fmt.Fprintf(w, "%-14s %8s %7s %6s %12s %14s %10s %8s\n",
		"policy", "workers", "shards", "steps", "latency(s)", "steps/s-virt", "loss", "retries")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %7d %6d %12s %14.3f %10.4f %8d\n",
			r.Policy, r.Workers, r.Shards, r.Steps, fmtDurS(r.Latency), r.Throughput, r.FinalLoss, r.Retries)
	}
}

// fig8AsyncStats aggregates one policy run.
type fig8AsyncStats struct {
	latency time.Duration
	loss    float64
	retries int
}

// fig8AsyncNode is one worker enclave of the consistency sweep, with
// the handles the virtual-time scheduler needs.
type fig8AsyncNode struct {
	worker    *dist.Worker
	platform  *sgx.Platform
	container *core.Container
	staged    bool
	steps     int
}

// fig8AsyncRun trains a fixed global step budget on a 4-worker,
// 2-shard HW-mode cluster under one consistency policy, with worker 0
// charged stragglerPenalty of extra virtual compute per step.
//
// The synchronous baseline runs the classic concurrent loop — the
// barrier itself serializes virtual time, so every round costs the
// straggler's pace. The async runs are driven by a discrete-event
// scheduler instead: each worker's step is split into its BeginStep
// (pull + compute) and FinishStep (push) phases and the phase whose
// worker has the smallest virtual clock runs next, in one goroutine.
// That is what a wall clock does to a real cluster — the slow worker's
// exchanges are rare events between many fast ones — and it makes the
// run fully deterministic, including which pushes exceed the staleness
// bound and retry.
func fig8AsyncRun(cfg Config, workers, shards, budget int, policy dist.ConsistencyPolicy) (fig8AsyncStats, error) {
	ref := models.MNISTCNN(1)
	initialVars := dist.InitialVars(ref.Graph)

	// Parameter-server shard nodes.
	psPlatforms := make([]*sgx.Platform, shards)
	pss := make([]*dist.ParameterServer, shards)
	addrs := make([]string, shards)
	for s := 0; s < shards; s++ {
		psPlatform, err := newPlatform(fmt.Sprintf("async-ps-%d", s))
		if err != nil {
			return fig8AsyncStats{}, err
		}
		psPlatforms[s] = psPlatform
		psContainer, err := core.Launch(core.Config{
			Kind:     core.RuntimeSconeHW,
			Platform: psPlatform,
			Image:    TFFullImage(),
			HostFS:   fsapi.NewMem(),
		})
		if err != nil {
			return fig8AsyncStats{}, err
		}
		defer psContainer.Close()
		psListener, err := psContainer.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fig8AsyncStats{}, err
		}
		psDev := psContainer.Device(1)
		ps, err := dist.NewParameterServer(dist.PSConfig{
			Listener:    psListener,
			Vars:        initialVars,
			Workers:     workers,
			LR:          0.0005,
			Clock:       psPlatform.Clock(),
			Params:      psPlatform.Params(),
			Shard:       s,
			Shards:      shards,
			Consistency: policy,
			ApplyMeter: func(flops, bytes int64) {
				psDev.Compute(flops)
				psDev.Access(bytes, false)
			},
		})
		if err != nil {
			return fig8AsyncStats{}, err
		}
		defer ps.Close()
		pss[s] = ps
		addrs[s] = psListener.Addr().String()
	}

	// Worker nodes. Every worker gets a shard big enough for the whole
	// budget, because under async the fast workers absorb the steps the
	// straggler never takes.
	nodes := make([]*fig8AsyncNode, workers)
	for id := 0; id < workers; id++ {
		node, err := fig8AsyncWorker(cfg, addrs, id, budget, policy)
		if err != nil {
			return fig8AsyncStats{}, err
		}
		defer node.container.Close()
		defer node.worker.Close()
		nodes[id] = node
	}

	if policy.Kind == dist.ConsistencySync {
		// Concurrent lockstep rounds, budget/workers each; the barrier
		// paces every round at the straggler's speed, because the round
		// only commits once the straggler's delayed push lands. A worker
		// that fails before pushing would leave the others blocked on a
		// barrier that can never fill, so the first failure closes the
		// shards to abort their rounds (Close is idempotent — the
		// deferred Closes above remain correct).
		var abortOnce sync.Once
		abort := func() {
			abortOnce.Do(func() {
				for _, ps := range pss {
					ps.Close()
				}
			})
		}
		rounds := budget / workers
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for id, node := range nodes {
			wg.Add(1)
			go func(id int, node *fig8AsyncNode) {
				defer wg.Done()
				defer func() {
					if errs[id] != nil {
						abort()
					}
				}()
				for r := 0; r < rounds; r++ {
					if errs[id] = node.worker.BeginStep(); errs[id] != nil {
						return
					}
					if id == 0 {
						node.platform.Clock().Advance(stragglerPenalty)
					}
					if errs[id] = node.worker.FinishStep(); errs[id] != nil {
						return
					}
					node.steps++
				}
			}(id, node)
		}
		wg.Wait()
		for id, err := range errs {
			if err != nil {
				return fig8AsyncStats{}, fmt.Errorf("sync worker %d: %w", id, err)
			}
		}
	} else {
		// Discrete-event schedule: always run the phase of the worker
		// with the smallest virtual clock (ties to the lowest id), in
		// one goroutine. The straggler's phases become rare events among
		// many fast ones — exactly what a wall clock does to a real
		// cluster — and the run is deterministic, including which pushes
		// exceed the staleness bound and retry.
		for done := 0; done < budget; {
			next := -1
			for id, node := range nodes {
				if next < 0 || node.platform.Clock().Now() < nodes[next].platform.Clock().Now() {
					next = id
				}
			}
			node := nodes[next]
			if !node.staged {
				if err := node.worker.BeginStep(); err != nil {
					return fig8AsyncStats{}, fmt.Errorf("async worker %d begin: %w", next, err)
				}
				if next == 0 {
					node.platform.Clock().Advance(stragglerPenalty)
				}
				node.staged = true
			} else {
				if err := node.worker.FinishStep(); err != nil {
					return fig8AsyncStats{}, fmt.Errorf("async worker %d finish: %w", next, err)
				}
				node.staged = false
				node.steps++
				done++
			}
		}
	}

	var stats fig8AsyncStats
	for _, node := range nodes {
		stats.retries += node.worker.StalenessRetries()
		if t := node.platform.Clock().Now(); t > stats.latency {
			stats.latency = t
		}
	}
	for _, p := range psPlatforms {
		if t := p.Clock().Now(); t > stats.latency {
			stats.latency = t
		}
	}
	loss, err := fig8AsyncEvalLoss(pss)
	if err != nil {
		return fig8AsyncStats{}, err
	}
	stats.loss = loss
	return stats, nil
}

// fig8AsyncWorker launches one worker enclave connected to every shard
// under the given policy expectation.
func fig8AsyncWorker(cfg Config, addrs []string, id, budget int, policy dist.ConsistencyPolicy) (*fig8AsyncNode, error) {
	platform, err := newPlatform(fmt.Sprintf("async-worker-%d", id))
	if err != nil {
		return nil, err
	}
	container, err := core.Launch(core.Config{
		Kind:     core.RuntimeSconeHW,
		Platform: platform,
		Image:    TFFullImage(),
		HostFS:   fsapi.NewMem(),
	})
	if err != nil {
		return nil, err
	}
	xs, ys := syntheticMNISTShard(cfg.BatchSize*budget, int64(100+id))
	h := models.MNISTCNN(1)
	worker, err := dist.NewWorker(dist.WorkerConfig{
		ID:    id,
		Addrs: addrs,
		Dial:  func(network, a string) (net.Conn, error) { return container.Dial(network, a, "") },
		Model: dist.Model{
			Graph: h.Graph, X: h.X, Y: h.Y, Loss: h.Loss, Logits: h.Logits,
		},
		XS: xs, YS: ys,
		BatchSize:   cfg.BatchSize,
		Device:      container.Device(0),
		Clock:       platform.Clock(),
		Params:      platform.Params(),
		Consistency: policy,
	})
	if err != nil {
		container.Close()
		return nil, err
	}
	return &fig8AsyncNode{worker: worker, platform: platform, container: container}, nil
}

// fig8AsyncEvalLoss scores the final parameter-server state — the
// shards' variables merged back into one replica — on a held-out
// deterministic batch, so sync and async rows are compared on the same
// footing regardless of which worker took which step.
func fig8AsyncEvalLoss(pss []*dist.ParameterServer) (float64, error) {
	h := models.MNISTCNN(1)
	sess := tf.NewSession(h.Graph, tf.WithSeed(1))
	defer sess.Close()
	for _, ps := range pss {
		for name, v := range ps.Vars() {
			if err := sess.SetVariable(name, v); err != nil {
				return 0, err
			}
		}
	}
	xs, ys := syntheticMNISTShard(256, 424242)
	out, err := sess.Run(tf.Feeds{h.X: xs, h.Y: ys}, []*tf.Node{h.Loss})
	if err != nil {
		return 0, err
	}
	return float64(out[0].Floats()[0]), nil
}
