package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/models"
	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tflite"
)

// TFvsTFLiteRow is one row of the §5.3 #4 comparison: inference latency
// of the full TensorFlow engine vs TensorFlow Lite inside an HW enclave.
type TFvsTFLiteRow struct {
	Engine      string
	BinaryBytes int64
	ModelBytes  int64
	Latency     time.Duration
}

// TFvsTFLite reproduces the paper's in-text table: classifying one image
// with Inception-v3 in HW mode takes 49.782 s with full TensorFlow
// (87.4 MB binary, read-write runtime state, EPC thrashing) versus
// 0.697 s with TensorFlow Lite (1.9 MB binary, streamed read-only
// weights) — a ~71× gap caused entirely by enclave memory behaviour.
func TFvsTFLite(cfg Config) ([]TFvsTFLiteRow, error) {
	cfg = cfg.withDefaults()
	spec := models.InceptionV3

	// --- TensorFlow Lite in HW mode. ---
	cfg.logf("tf-vs-tflite: TensorFlow Lite (HW)")
	liteModel := models.BuildInferenceModel(spec)
	input := models.RandomImageInput(spec, 1, 9)
	liteLatency, err := classifyLatency(core.RuntimeSconeHW, liteModel, input, 1, 1, nil)
	if err != nil {
		return nil, err
	}

	// --- Full TensorFlow in HW mode. ---
	cfg.logf("tf-vs-tflite: full TensorFlow (HW)")
	platform, err := newPlatform("node")
	if err != nil {
		return nil, err
	}
	c, err := core.Launch(core.Config{
		Kind:     core.RuntimeSconeHW,
		Platform: platform,
		Image:    TFFullImage(),
		HostFS:   fsapi.NewMem(),
		Threads:  1,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	g, x, probs := models.BuildInferenceTFGraph(spec)
	sess := tf.NewSession(g, tf.WithDevice(c.Device(1)))
	defer sess.Close()
	// The full runtime keeps the model as writable state (constants are
	// materialized into its arena); register that residency.
	if e := c.Enclave(); e != nil {
		e.Alloc("tf/model-state", spec.FileBytes)
	}

	// Warm-up (arena registration), then the measured run.
	if _, err := sess.Run(tf.Feeds{x: input}, []*tf.Node{probs}); err != nil {
		return nil, err
	}
	span := c.Clock().Start()
	if _, err := sess.Run(tf.Feeds{x: input}, []*tf.Node{probs}); err != nil {
		return nil, err
	}
	tfLatency := span.Stop()

	rows := []TFvsTFLiteRow{
		{Engine: "TensorFlow", BinaryBytes: TFFullBinaryBytes, ModelBytes: spec.FileBytes, Latency: tfLatency},
		{Engine: "TensorFlow Lite", BinaryBytes: tflite.BinarySize, ModelBytes: spec.FileBytes, Latency: liteLatency},
	}
	cfg.logf("tf-vs-tflite: TF %.2f s vs TFLite %.2f s (%.0fx)",
		tfLatency.Seconds(), liteLatency.Seconds(), float64(tfLatency)/float64(liteLatency))
	return rows, nil
}

// PrintTFvsTFLite renders the rows.
func PrintTFvsTFLite(w io.Writer, rows []TFvsTFLiteRow) {
	fmt.Fprintln(w, "TensorFlow vs TensorFlow Lite inference in HW mode (paper §5.3 #4)")
	fmt.Fprintf(w, "%-18s %12s %12s %12s\n", "engine", "binary(MB)", "model(MB)", "latency(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %12.1f %12d %12s\n", r.Engine, float64(r.BinaryBytes)/(1<<20), r.ModelBytes>>20, fmtDurS(r.Latency))
	}
	if len(rows) == 2 && rows[1].Latency > 0 {
		fmt.Fprintf(w, "ratio: %.0fx\n", float64(rows[0].Latency)/float64(rows[1].Latency))
	}
}
