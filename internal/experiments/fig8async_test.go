package experiments

import "testing"

// TestFigure8AsyncShape pins the acceptance shape of the consistency
// sweep at a reduced size: with a straggler in the cluster, every async
// staleness bound clears the synchronous baseline's virtual-time
// throughput, and the bounded points (K ≤ 8) converge within 10% of the
// synchronous final loss. The async rows run on a deterministic
// discrete-event schedule, so the whole sweep is reproducible
// bit-for-bit — re-running a row must change nothing.
func TestFigure8AsyncShape(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced paper workload; skipped under -short")
	}
	cfg := Config{Steps: 3, BatchSize: 20}
	rows, err := Figure8Async(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].Policy != "sync" {
		t.Fatalf("unexpected sweep shape: %+v", rows)
	}
	sync := rows[0]
	if sync.Retries != 0 {
		t.Fatalf("synchronous run reported %d staleness retries", sync.Retries)
	}
	for _, r := range rows[1:] {
		if r.Steps != sync.Steps {
			t.Fatalf("%s trained %d steps, sync trained %d — throughput not comparable", r.Policy, r.Steps, sync.Steps)
		}
		if r.Throughput <= sync.Throughput {
			t.Errorf("%s throughput %.3f steps/s does not beat sync %.3f — the straggler still gates the cluster",
				r.Policy, r.Throughput, sync.Throughput)
		}
		if r.K >= 0 && r.K <= 8 && r.FinalLoss > sync.FinalLoss*1.1 {
			t.Errorf("%s final loss %.4f exceeds sync %.4f + 10%%", r.Policy, r.FinalLoss, sync.FinalLoss)
		}
	}

	// Determinism: the discrete-event schedule makes the async rows
	// exact (the concurrent sync row's virtual clock can wobble a few
	// microseconds with goroutine interleaving, so only its loss is
	// pinned).
	again, err := Figure8Async(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].FinalLoss != sync.FinalLoss {
		t.Fatalf("sync loss not reproducible: %v vs %v", sync.FinalLoss, again[0].FinalLoss)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Latency != again[i].Latency || rows[i].FinalLoss != again[i].FinalLoss || rows[i].Retries != again[i].Retries {
			t.Fatalf("%s not reproducible: %+v vs %+v", rows[i].Policy, rows[i], again[i])
		}
	}
}
