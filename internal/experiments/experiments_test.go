package experiments

import (
	"testing"
	"time"

	"github.com/securetf/securetf/internal/models"
)

// These tests assert the SHAPE of every figure against the paper: which
// system wins, rough factors, and where crossovers fall. Absolute
// latencies come from the calibrated virtual-time model and are recorded
// in EXPERIMENTS.md rather than asserted here.

func findFig4(t *testing.T, rows []Fig4Row, system string) Fig4Row {
	t.Helper()
	for _, r := range rows {
		if r.System == system {
			return r
		}
	}
	t.Fatalf("no row for %q", system)
	return Fig4Row{}
}

func TestFigure4Shape(t *testing.T) {
	rows, err := Figure4(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ias := findFig4(t, rows, "IAS")
	cas := findFig4(t, rows, "secureTF CAS")

	// Paper: IAS total ≈ 325 ms, CAS ≈ 17 ms (≈ 19×); verification leg
	// ≈ 280 ms vs < 1 ms.
	if ias.WaitConfirmation < 250*time.Millisecond {
		t.Errorf("IAS wait-confirmation = %v, want WAN scale (~280 ms)", ias.WaitConfirmation)
	}
	if cas.WaitConfirmation > 5*time.Millisecond {
		t.Errorf("CAS wait-confirmation = %v, want local scale (<1-5 ms)", cas.WaitConfirmation)
	}
	ratio := float64(ias.Total()) / float64(cas.Total())
	if ratio < 8 || ratio > 40 {
		t.Errorf("IAS/CAS total ratio = %.1f, paper reports ≈19x", ratio)
	}
	// Initialization is flow-independent (same client-side setup).
	initRatio := float64(ias.Initialization) / float64(cas.Initialization)
	if initRatio < 0.5 || initRatio > 2 {
		t.Errorf("initialization legs diverge: %v vs %v", ias.Initialization, cas.Initialization)
	}
}

// fig5For indexes rows by (system, model).
func fig5For(t *testing.T, rows []Fig5Row, system, model string) Fig5Row {
	t.Helper()
	for _, r := range rows {
		if r.System == system && r.Model == model {
			return r
		}
	}
	t.Fatalf("no row for %s/%s", system, model)
	return Fig5Row{}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds paper-size models")
	}
	rows, err := Figure5(Config{Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range models.PaperModels() {
		native := fig5For(t, rows, "Native glibc", spec.Name)
		musl := fig5For(t, rows, "Native musl", spec.Name)
		sim := fig5For(t, rows, "Sim", spec.Name)
		hw := fig5For(t, rows, "HW", spec.Name)
		graphene := fig5For(t, rows, "Graphene", spec.Name)

		// Paper: Sim within ~5% of native; musl and glibc near parity.
		simOver := float64(sim.Latency) / float64(native.Latency)
		if simOver < 0.97 || simOver > 1.12 {
			t.Errorf("%s: Sim/native = %.3f, paper ~1.05", spec.Name, simOver)
		}
		muslOver := float64(musl.Latency) / float64(native.Latency)
		if muslOver < 0.98 || muslOver > 1.10 {
			t.Errorf("%s: musl/glibc = %.3f, paper near parity", spec.Name, muslOver)
		}
		// HW slower than Sim but bounded (paper 1.12–1.39x).
		hwOver := float64(hw.Latency) / float64(sim.Latency)
		if hwOver < 1.05 || hwOver > 1.6 {
			t.Errorf("%s: HW/Sim = %.3f, paper 1.12–1.39", spec.Name, hwOver)
		}
		// Graphene never meaningfully beats secureTF HW.
		if float64(graphene.Latency) < 0.95*float64(hw.Latency) {
			t.Errorf("%s: Graphene (%v) beat HW (%v)", spec.Name, graphene.Latency, hw.Latency)
		}
	}

	// Crossover: comparable at 42 MB, HW clearly ahead at 163 MB (paper
	// 1.03x → ~1.4x).
	g42 := fig5For(t, rows, "Graphene", "densenet")
	h42 := fig5For(t, rows, "HW", "densenet")
	small := float64(g42.Latency) / float64(h42.Latency)
	if small > 1.2 {
		t.Errorf("densenet: Graphene/HW = %.2f, paper ~1.03 (comparable under EPC)", small)
	}
	g163 := fig5For(t, rows, "Graphene", "inception_v4")
	h163 := fig5For(t, rows, "HW", "inception_v4")
	big := float64(g163.Latency) / float64(h163.Latency)
	if big < 1.15 || big > 2.2 {
		t.Errorf("inception_v4: Graphene/HW = %.2f, paper ~1.4", big)
	}
	if big <= small {
		t.Errorf("Graphene/HW gap must grow with model size: %.2f -> %.2f", small, big)
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds paper-size models")
	}
	// Densenet alone is enough to check the FSPF overhead band.
	rows, err := Figure6(Config{Runs: 20, Models: []models.InferenceSpec{models.Densenet}})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Fig6Row{}
	for _, r := range rows {
		byLabel[r.System] = r
	}
	for _, mode := range []string{"Sim", "HW"} {
		plain := byLabel[mode]
		shielded := byLabel[mode+" w/ FSPF"]
		overhead := float64(shielded.Latency)/float64(plain.Latency) - 1
		// Paper: 0.12% (Sim) and 0.9% (HW). Anything under ~3% counts as
		// the "negligible" shape; negative would mean mismeasurement.
		if overhead < -0.005 || overhead > 0.03 {
			t.Errorf("%s: FSPF overhead = %.2f%%, paper reports <1%%", mode, overhead*100)
		}
	}
}

func fig7For(t *testing.T, rows []Fig7Row, system, mode string, cores, nodes int) Fig7Row {
	t.Helper()
	for _, r := range rows {
		if r.System == system && r.Mode == mode && r.Cores == cores && r.Nodes == nodes {
			return r
		}
	}
	t.Fatalf("no row for %s/%s cores=%d nodes=%d", system, mode, cores, nodes)
	return Fig7Row{}
}

func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds paper-size models")
	}
	rows, err := Figure7(Config{Images: 24})
	if err != nil {
		t.Fatal(err)
	}
	// Scale-up: everyone improves 1 -> 4 cores.
	for _, sys := range []string{"Native glibc", "Sim", "HW"} {
		one := fig7For(t, rows, sys, "scale-up", 1, 0)
		four := fig7For(t, rows, sys, "scale-up", 4, 0)
		if float64(one.Latency)/float64(four.Latency) < 2.5 {
			t.Errorf("%s: 1->4 cores speedup %.2f, want near-linear", sys, float64(one.Latency)/float64(four.Latency))
		}
	}
	// 4 -> 8: Sim keeps improving (hyper-threads), HW regresses (EPC).
	sim4 := fig7For(t, rows, "Sim", "scale-up", 4, 0)
	sim8 := fig7For(t, rows, "Sim", "scale-up", 8, 0)
	if sim8.Latency >= sim4.Latency {
		t.Errorf("Sim did not improve 4->8 threads: %v -> %v", sim4.Latency, sim8.Latency)
	}
	hw4 := fig7For(t, rows, "HW", "scale-up", 4, 0)
	hw8 := fig7For(t, rows, "HW", "scale-up", 8, 0)
	if hw8.Latency <= hw4.Latency {
		t.Errorf("HW kept scaling 4->8 threads (%v -> %v); paper: EPC stops it", hw4.Latency, hw8.Latency)
	}
	// Scale-out: HW scales with nodes (paper: 1180 s -> 403 s at 3 nodes).
	hw1 := fig7For(t, rows, "HW", "scale-out", 4, 1)
	hw3 := fig7For(t, rows, "HW", "scale-out", 4, 3)
	speedup := float64(hw1.Latency) / float64(hw3.Latency)
	if speedup < 2.0 {
		t.Errorf("HW scale-out 1->3 nodes speedup = %.2f, paper ≈2.9", speedup)
	}
}

func fig8For(t *testing.T, rows []Fig8Row, system string, workers int) Fig8Row {
	t.Helper()
	for _, r := range rows {
		if r.System == system && r.Workers == workers {
			return r
		}
	}
	t.Fatalf("no row for %s workers=%d", system, workers)
	return Fig8Row{}
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs distributed training across 15 configurations")
	}
	rows, err := Figure8(Config{Steps: 6, BatchSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	native := fig8For(t, rows, "Native", 1)
	simNoTLS := fig8For(t, rows, "secureTF SIM w/o TLS", 1)
	simTLS := fig8For(t, rows, "secureTF SIM", 1)
	hwTLS := fig8For(t, rows, "secureTF HW", 1)

	// Ordering: native < SIM w/o TLS < SIM < HW.
	if !(native.Latency < simNoTLS.Latency && simNoTLS.Latency < simTLS.Latency && simTLS.Latency < hwTLS.Latency) {
		t.Errorf("ordering broken: native %v, sim-notls %v, sim %v, hw %v",
			native.Latency, simNoTLS.Latency, simTLS.Latency, hwTLS.Latency)
	}
	// Paper factors: HW ≈14x, SIM ≈6x, SIM w/o TLS ≈2.3x native.
	if r := float64(hwTLS.Latency) / float64(native.Latency); r < 6 || r > 40 {
		t.Errorf("HW/native = %.1f, paper ≈14", r)
	}
	if r := float64(simTLS.Latency) / float64(native.Latency); r < 2.5 || r > 12 {
		t.Errorf("SIM/native = %.1f, paper ≈6", r)
	}
	if r := float64(simNoTLS.Latency) / float64(native.Latency); r < 1.3 || r > 5 {
		t.Errorf("SIM-w/o-TLS/native = %.1f, paper ≈2.3", r)
	}
	// Scaling: HW speedup with 3 workers ≈ 2.57x in the paper.
	hw3 := fig8For(t, rows, "secureTF HW", 3)
	if s := float64(hwTLS.Latency) / float64(hw3.Latency); s < 1.6 {
		t.Errorf("HW 3-worker speedup = %.2f, paper ≈2.57", s)
	}
	// Training must actually learn.
	if hwTLS.FinalLoss >= 2.4 {
		t.Errorf("final loss %.3f did not move below initial ~2.3+", hwTLS.FinalLoss)
	}
}

func TestFigure8ShardSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs distributed training across 5 cluster configurations")
	}
	rows, err := Figure8Shards(Config{Steps: 8, BatchSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	get := func(workers, shards int) Fig8ShardRow {
		for _, r := range rows {
			if r.Workers == workers && r.Shards == shards {
				return r
			}
		}
		t.Fatalf("no row for workers=%d shards=%d", workers, shards)
		return Fig8ShardRow{}
	}
	// The classic worker-scaling speedup survives the sharded refactor.
	if s := get(2, 1).Speedup1W; s < 1.5 {
		t.Errorf("2-worker speedup = %.2f, paper ≈1.96", s)
	}
	// The sharding headline: per-shard push wire time drops monotonically
	// as the same 4-worker job fans its gradients over 1 → 2 → 4 shards.
	w1, w2, w4 := get(4, 1).PushWirePerShard, get(4, 2).PushWirePerShard, get(4, 4).PushWirePerShard
	if !(w1 > w2 && w2 > w4) {
		t.Errorf("per-shard push wire not monotonically decreasing: 1 shard %v, 2 shards %v, 4 shards %v", w1, w2, w4)
	}
	// Sharding is a placement decision, not a math change: the trained
	// loss at 4 workers must agree across shard counts (up to float
	// summation order across concurrent pushes).
	base := get(4, 1).FinalLoss
	for _, shards := range []int{2, 4} {
		if loss := get(4, shards).FinalLoss; loss < base*0.99 || loss > base*1.01 {
			t.Errorf("4-worker loss at %d shards = %.4f, want ≈ %.4f", shards, loss, base)
		}
	}
}

func TestFigure8CompressShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs distributed training across 6 codec/TLS configurations")
	}
	rows, err := Figure8Compress(Config{Steps: 8, BatchSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("expected 6 rows (3 codecs × TLS on/off), got %d", len(rows))
	}
	get := func(codec string, tls bool) Fig8CompressRow {
		for _, r := range rows {
			if r.Codec == codec && r.TLS == tls {
				return r
			}
		}
		t.Fatalf("no row for codec=%q tls=%v", codec, tls)
		return Fig8CompressRow{}
	}
	for _, tls := range []bool{false, true} {
		none, int8r, topk := get("none", tls), get("int8", tls), get("topk f=0.05", tls)
		// The wire headline: ≥3× fewer push bytes for int8, and top-k at
		// f=0.05 beats int8.
		if r := float64(none.PushBytesPerRound) / float64(int8r.PushBytesPerRound); r < 3 {
			t.Errorf("tls=%v: int8 push-byte reduction %.2fx, want ≥3x", tls, r)
		}
		if topk.PushBytesPerRound >= int8r.PushBytesPerRound {
			t.Errorf("tls=%v: top-k pushed %d B/round, not below int8's %d", tls, topk.PushBytesPerRound, int8r.PushBytesPerRound)
		}
		// Smaller frames must show up as less per-shard push wire vtime
		// by at least the same ≥3× factor: send() charges serialization
		// for the bytes actually framed, so this pins the "honest vtime"
		// half of the story. (End-to-end latency also drops, but it
		// carries run-to-run jitter from concurrent push arrival order,
		// so the assertions stick to the deterministic wire quantities.)
		if r := float64(none.PushWirePerShard) / float64(int8r.PushWirePerShard); r < 3 {
			t.Errorf("tls=%v: int8 push wire vtime reduction %.2fx, want ≥3x", tls, r)
		}
		if !(none.PushWirePerShard > int8r.PushWirePerShard && int8r.PushWirePerShard > topk.PushWirePerShard) {
			t.Errorf("tls=%v: push wire not monotone over codecs: none %v, int8 %v, topk %v",
				tls, none.PushWirePerShard, int8r.PushWirePerShard, topk.PushWirePerShard)
		}
		// The convergence guarantee: error feedback keeps the lossy
		// codecs' final loss within 10% of the uncompressed run.
		for _, r := range []Fig8CompressRow{int8r, topk} {
			if ratio := r.FinalLoss / none.FinalLoss; ratio < 0.9 || ratio > 1.1 {
				t.Errorf("tls=%v codec=%s: final loss %.4f vs uncompressed %.4f (ratio %.3f outside ±10%%)",
					tls, r.Codec, r.FinalLoss, none.FinalLoss, ratio)
			}
		}
	}
}

func TestTFvsTFLiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 91 MB model twice")
	}
	rows, err := TFvsTFLite(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	tfRow, liteRow := rows[0], rows[1]
	ratio := float64(tfRow.Latency) / float64(liteRow.Latency)
	// Paper: 71x. The shape requirement is an order-of-magnitude-plus gap
	// caused by EPC behaviour.
	if ratio < 15 {
		t.Errorf("TF/TFLite ratio = %.1f, paper ≈71 (want >> 10)", ratio)
	}
	if tfRow.BinaryBytes < 40*liteRow.BinaryBytes {
		t.Errorf("binary size gap lost: %d vs %d", tfRow.BinaryBytes, liteRow.BinaryBytes)
	}
}
