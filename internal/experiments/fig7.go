package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/models"
	"github.com/securetf/securetf/internal/tflite"
)

// Fig7Row is one point of Figure 7: total latency to classify the image
// batch at a given parallelism.
type Fig7Row struct {
	System  string
	Mode    string // "scale-up" or "scale-out"
	Cores   int    // scale-up: threads on one node
	Nodes   int    // scale-out: nodes with 4 cores each
	Images  int
	Latency time.Duration
}

// ArenaPerThread models the per-thread working state of the inference
// runtime (interpreter scratch, stacks, I/O buffers). This is what pushes
// the enclave working set past the EPC between 4 and 8 threads in the
// paper's scale-up experiment: 42 MB of weights + 4×8 MB fits, + 8×8 MB
// does not.
const ArenaPerThread int64 = 8 << 20

// fig7Kinds are the systems of Figure 7.
func fig7Kinds() []core.RuntimeKind {
	return []core.RuntimeKind{core.RuntimeNativeGlibc, core.RuntimeSconeSIM, core.RuntimeSconeHW}
}

// Figure7 reproduces the scalability experiment (paper Fig. 7):
// classifying a batch of CIFAR-10 images with 1/2/4/8 cores on one node
// (scale-up) and with 1/2/3 four-core nodes (scale-out). In HW mode
// scale-up stops paying off beyond 4 cores because per-thread state
// pushes the working set past the EPC; scale-out keeps scaling because
// every node brings its own EPC.
func Figure7(cfg Config) ([]Fig7Row, error) {
	cfg = cfg.withDefaults()
	// The paper classifies CIFAR images with a large pre-trained model;
	// Densenet's 42 MB places the 4-core working set just under the EPC
	// and the 8-core one over it.
	spec := models.Densenet
	cfg.logf("fig7: building %s", spec.Name)
	model := models.BuildInferenceModel(spec)

	var rows []Fig7Row

	// Scale-up: one node, varying thread count.
	for _, kind := range fig7Kinds() {
		for _, cores := range []int{1, 2, 4, 8} {
			latency, err := fig7ScaleUp(kind, model, spec, cfg.Images, cores)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 scale-up %v/%d: %w", kind, cores, err)
			}
			cfg.logf("fig7: scale-up  %-14s cores=%d %9.2f s", kind, cores, latency.Seconds())
			rows = append(rows, Fig7Row{
				System: kind.String(), Mode: "scale-up", Cores: cores,
				Images: cfg.Images, Latency: latency,
			})
		}
	}

	// Scale-out: 1..3 nodes at 4 cores each, images split evenly.
	for _, kind := range fig7Kinds() {
		for _, nodes := range []int{1, 2, 3} {
			latency, err := fig7ScaleOut(kind, model, spec, cfg.Images, nodes)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 scale-out %v/%d: %w", kind, nodes, err)
			}
			cfg.logf("fig7: scale-out %-14s nodes=%d %9.2f s", kind, nodes, latency.Seconds())
			rows = append(rows, Fig7Row{
				System: kind.String(), Mode: "scale-out", Nodes: nodes, Cores: 4,
				Images: cfg.Images, Latency: latency,
			})
		}
	}
	return rows, nil
}

// fig7ScaleUp classifies the batch on one node with the given threads.
// Images are classified one at a time (the paper's label_image workload),
// so the model weights stream through the enclave once per image.
func fig7ScaleUp(kind core.RuntimeKind, model *tflite.Model, spec models.InferenceSpec, images, threads int) (time.Duration, error) {
	input := models.RandomImageInput(spec, 1, 7)
	setup := func(c *core.Container) error {
		if e := c.Enclave(); e != nil {
			for i := 0; i < threads; i++ {
				e.Alloc(fmt.Sprintf("thread-%d/scratch", i), ArenaPerThread)
			}
		}
		return nil
	}
	perImage, err := classifyLatency(kind, model, input, images, threads, setup)
	if err != nil {
		return 0, err
	}
	return perImage * time.Duration(images), nil
}

// fig7ScaleOut classifies the batch split over N independent nodes and
// reports the slowest node (the batch is done when all nodes are).
func fig7ScaleOut(kind core.RuntimeKind, model *tflite.Model, spec models.InferenceSpec, images, nodes int) (time.Duration, error) {
	per := images / nodes
	if per == 0 {
		per = 1
	}
	latencies := make([]time.Duration, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			count := per
			if n == 0 {
				count = images - per*(nodes-1) // remainder on node 0
			}
			input := models.RandomImageInput(spec, 1, int64(8+n))
			setup := func(c *core.Container) error {
				if e := c.Enclave(); e != nil {
					for i := 0; i < 4; i++ {
						e.Alloc(fmt.Sprintf("thread-%d/scratch", i), ArenaPerThread)
					}
				}
				return nil
			}
			perImage, err := classifyLatency(kind, model, input, count, 4, setup)
			latencies[n], errs[n] = perImage*time.Duration(count), err
		}(n)
	}
	wg.Wait()
	var max time.Duration
	for n := 0; n < nodes; n++ {
		if errs[n] != nil {
			return 0, errs[n]
		}
		if latencies[n] > max {
			max = latencies[n]
		}
	}
	return max, nil
}

// PrintFigure7 renders the rows.
func PrintFigure7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7 — scalability: batch classification latency (s)")
	fmt.Fprintf(w, "%-10s %-14s %6s %6s %8s %12s\n", "mode", "system", "cores", "nodes", "images", "latency(s)")
	for _, r := range rows {
		nodes := r.Nodes
		if r.Mode == "scale-up" {
			nodes = 1
		}
		fmt.Fprintf(w, "%-10s %-14s %6d %6d %8d %12s\n", r.Mode, r.System, r.Cores, nodes, r.Images, fmtDurS(r.Latency))
	}
}
