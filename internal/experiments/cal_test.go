package experiments

import (
	"fmt"
	"testing"
)

func TestCalibrationReport(t *testing.T) {
	rows, err := Figure8(Config{Steps: 6, BatchSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig8Row{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.System, r.Workers)] = r
	}
	n := byKey["Native/1"].Latency
	fmt.Printf("fig8 native=%v\n", n)
	for _, k := range []string{"secureTF SIM w/o TLS/1", "secureTF SIM/1", "secureTF HW w/o TLS/1", "secureTF HW/1"} {
		fmt.Printf("fig8 %-24s %v  ratio=%.2f\n", k, byKey[k].Latency, float64(byKey[k].Latency)/float64(n))
	}
	hw1, hw2, hw3 := byKey["secureTF HW/1"].Latency, byKey["secureTF HW/2"].Latency, byKey["secureTF HW/3"].Latency
	fmt.Printf("fig8 HW speedup 2w=%.2f 3w=%.2f\n", float64(hw1)/float64(hw2), float64(hw1)/float64(hw3))

	tr, err := TFvsTFLite(Config{})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("tfvstflite TF=%v TFLite=%v ratio=%.1f\n", tr[0].Latency, tr[1].Latency, float64(tr[0].Latency)/float64(tr[1].Latency))
}
