package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/models"
	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tflite"
	"github.com/securetf/securetf/internal/vtime"
)

// Fig5Row is one bar of Figure 5: classification latency of one system
// on one model.
type Fig5Row struct {
	System     string
	Model      string
	ModelBytes int64
	Latency    time.Duration
}

// Figure5 reproduces the classification latency comparison (paper
// Fig. 5): native musl, native glibc, secureTF Sim, secureTF HW and
// Graphene, each classifying one image with models of 42/91/163 MB on a
// single thread.
func Figure5(cfg Config) ([]Fig5Row, error) {
	cfg = cfg.withDefaults()
	var rows []Fig5Row
	for _, spec := range cfg.Models {
		cfg.logf("fig5: building %s (%d MB)", spec.Name, spec.FileBytes>>20)
		model := models.BuildInferenceModel(spec)
		input := models.RandomImageInput(spec, 1, 5)
		for _, kind := range fig5Kinds() {
			latency, err := classifyLatency(kind, model, input, cfg.Runs, 1, nil)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig5 %v/%s: %w", kind, spec.Name, err)
			}
			cfg.logf("fig5: %-14s %-13s %8.1f ms", kind, spec.Name, float64(latency)/1e6)
			rows = append(rows, Fig5Row{
				System:     kind.String(),
				Model:      spec.Name,
				ModelBytes: spec.FileBytes,
				Latency:    latency,
			})
		}
	}
	return rows, nil
}

// classifyLatency measures the mean per-classification virtual latency of
// a model under a runtime kind. extraSetup, when non-nil, runs after the
// container launches (e.g. to register per-thread arenas).
func classifyLatency(kind core.RuntimeKind, model *tflite.Model, input *tf.Tensor, runs, threads int, extraSetup func(c *core.Container) error) (time.Duration, error) {
	platform, err := newPlatform("node")
	if err != nil {
		return 0, err
	}
	c, err := core.Launch(core.Config{
		Kind:     kind,
		Platform: platform,
		Image:    TFLiteImage(),
		HostFS:   fsapi.NewMem(),
		Threads:  threads,
	})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if extraSetup != nil {
		if err := extraSetup(c); err != nil {
			return 0, err
		}
	}
	interp, err := tflite.NewInterpreter(model, tflite.WithDevice(c.Device(threads)))
	if err != nil {
		return 0, err
	}
	defer interp.Close()
	if err := interp.AllocateTensors(); err != nil {
		return 0, err
	}
	return measureInvokes(c.Clock(), interp, input, runs)
}

// measureInvokes runs the interpreter `runs` times over input and returns
// the mean virtual latency.
func measureInvokes(clock *vtime.Clock, interp *tflite.Interpreter, input *tf.Tensor, runs int) (time.Duration, error) {
	if err := interp.SetInput(0, input); err != nil {
		return 0, err
	}
	// Warm-up invoke (arena planning), not measured — the paper's 1,000
	// run averages amortize startup the same way.
	if err := interp.Invoke(); err != nil {
		return 0, err
	}
	span := clock.Start()
	for i := 0; i < runs; i++ {
		if err := interp.Invoke(); err != nil {
			return 0, err
		}
	}
	return span.Stop() / time.Duration(runs), nil
}

// PrintFigure5 renders the rows as a table grouped by model.
func PrintFigure5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Figure 5 — classification latency (ms), single thread")
	fmt.Fprintf(w, "%-14s %-14s %10s %12s\n", "system", "model", "size(MB)", "latency(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-14s %10d %12s\n", r.System, r.Model, r.ModelBytes>>20, fmtDur(r.Latency))
	}
}
