package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/models"
	"github.com/securetf/securetf/internal/seccrypto"
	"github.com/securetf/securetf/internal/shield/fsshield"
	"github.com/securetf/securetf/internal/tf"
	"github.com/securetf/securetf/internal/tflite"
)

// Fig6Row is one bar of Figure 6: classification latency with and
// without the file-system shield (FSPF).
type Fig6Row struct {
	System     string
	Model      string
	ModelBytes int64
	FSPF       bool
	Latency    time.Duration
}

// fig6Kinds are the systems of Figure 6.
func fig6Kinds() []struct {
	kind core.RuntimeKind
	fspf bool
} {
	return []struct {
		kind core.RuntimeKind
		fspf bool
	}{
		{core.RuntimeNativeMusl, false},
		{core.RuntimeSconeSIM, false},
		{core.RuntimeSconeSIM, true},
		{core.RuntimeSconeHW, false},
		{core.RuntimeSconeHW, true},
	}
}

// Figure6 reproduces the file-system shield effect (paper Fig. 6): the
// encrypted model and input are decrypted inside the enclave; amortized
// over the run count the overhead is a fraction of a percent (the paper
// reports 0.12 % in Sim and 0.9 % in HW mode).
func Figure6(cfg Config) ([]Fig6Row, error) {
	cfg = cfg.withDefaults()
	var rows []Fig6Row
	for _, spec := range cfg.Models {
		cfg.logf("fig6: building %s (%d MB)", spec.Name, spec.FileBytes>>20)
		model := models.BuildInferenceModel(spec)
		raw := model.Marshal()
		input := models.RandomImageInput(spec, 1, 6)
		for _, sys := range fig6Kinds() {
			latency, err := fspfLatency(sys.kind, sys.fspf, raw, input, spec, cfg.Runs)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig6 %v fspf=%v: %w", sys.kind, sys.fspf, err)
			}
			label := sys.kind.String()
			if sys.fspf {
				label += " w/ FSPF"
			}
			cfg.logf("fig6: %-16s %-13s %8.1f ms", label, spec.Name, float64(latency)/1e6)
			rows = append(rows, Fig6Row{
				System:     label,
				Model:      spec.Name,
				ModelBytes: spec.FileBytes,
				FSPF:       sys.fspf,
				Latency:    latency,
			})
		}
	}
	return rows, nil
}

// fspfLatency measures mean latency including amortized startup: the
// model file is read (and with FSPF decrypted and verified) through the
// container's file system before the classification runs.
func fspfLatency(kind core.RuntimeKind, fspf bool, modelRaw []byte, input *tf.Tensor, spec models.InferenceSpec, runs int) (time.Duration, error) {
	platform, err := newPlatform("node")
	if err != nil {
		return 0, err
	}
	host := fsapi.NewMem()

	volKey, err := seccrypto.NewRandomKey()
	if err != nil {
		return 0, err
	}
	ccfg := core.Config{
		Kind:     kind,
		Platform: platform,
		Image:    TFLiteImage(),
		HostFS:   host,
		Threads:  1,
	}
	if fspf {
		ccfg.FSShieldRules = []fsshield.Rule{{Prefix: "protected/", Level: fsshield.LevelEncrypted}}
		ccfg.VolumeKey = &volKey
	}
	c, err := core.Launch(ccfg)
	if err != nil {
		return 0, err
	}
	defer c.Close()

	// Provision the model file (setup, not timed): written through the
	// container FS so with FSPF it lands encrypted on the host.
	modelPath := "protected/model.tflite"
	if err := fsapi.WriteFile(c.FS(), modelPath, modelRaw); err != nil {
		return 0, err
	}

	clock := c.Clock()
	span := clock.Start()
	// Startup: read (and with FSPF decrypt+verify) the model.
	loaded, err := fsapi.ReadFile(c.FS(), modelPath)
	if err != nil {
		return 0, err
	}
	model, err := tflite.Unmarshal(loaded)
	if err != nil {
		return 0, err
	}
	interp, err := tflite.NewInterpreter(model, tflite.WithDevice(c.Device(1)))
	if err != nil {
		return 0, err
	}
	defer interp.Close()
	if err := interp.AllocateTensors(); err != nil {
		return 0, err
	}
	if err := interp.SetInput(0, input); err != nil {
		return 0, err
	}
	for i := 0; i < runs; i++ {
		if err := interp.Invoke(); err != nil {
			return 0, err
		}
	}
	return span.Stop() / time.Duration(runs), nil
}

// PrintFigure6 renders the rows.
func PrintFigure6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6 — file-system shield effect on classification latency (ms)")
	fmt.Fprintf(w, "%-18s %-14s %10s %12s\n", "system", "model", "size(MB)", "latency(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-14s %10d %12s\n", r.System, r.Model, r.ModelBytes>>20, fmtDur(r.Latency))
	}
}
