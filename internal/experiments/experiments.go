// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each FigureN function runs the corresponding workload
// on the simulation substrate and returns the series the paper plots;
// Print helpers render them as text tables. The cmd/securetf-bench
// binary and the repository-root benchmarks drive these harnesses.
//
// Absolute numbers come from the calibrated virtual-time cost model and
// are not expected to match the paper's testbed; EXPERIMENTS.md records
// paper-vs-measured values and the shape checks in experiments_test.go
// assert that orderings, overhead bands and crossovers hold.
package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/models"
	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/tflite"
)

// Config tunes experiment sizes so tests, benches and the CLI can trade
// fidelity for time.
type Config struct {
	// Runs is the number of classification runs averaged per data point
	// (the paper averages 1,000). Default 10.
	Runs int
	// Models selects the Figure 5/6 model specs. Defaults to the paper's
	// three.
	Models []models.InferenceSpec
	// Images is the Figure 7 batch size (the paper classifies 800).
	// Default 64.
	Images int
	// Steps is the Figure 8 training step count. Default 12.
	Steps int
	// BatchSize is the Figure 8 minibatch size (the paper uses 100).
	BatchSize int
	// Log, when set, receives progress lines.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 10
	}
	if len(c.Models) == 0 {
		c.Models = models.PaperModels()
	}
	if c.Images <= 0 {
		c.Images = 64
	}
	if c.Steps <= 0 {
		c.Steps = 12
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// TFLiteImage is the TensorFlow Lite application image: the paper
// measures its binary at 1.9 MB.
func TFLiteImage() sgx.Image {
	return sgx.SyntheticImage("tensorflow-lite", tflite.BinarySize, 4<<20)
}

// TFFullBinaryBytes is the full TensorFlow binary size the paper reports
// (87.4 MB).
const TFFullBinaryBytes int64 = 87*1024*1024 + 400*1024

// TFFullHeapBytes models the full TensorFlow runtime's writable heap:
// allocator arenas, graph structures and protobuf state.
const TFFullHeapBytes int64 = 32 << 20

// TFFullImage is the full TensorFlow application image.
func TFFullImage() sgx.Image {
	return sgx.SyntheticImage("tensorflow-full", TFFullBinaryBytes, TFFullHeapBytes)
}

// newPlatform builds a fresh platform with default calibration.
func newPlatform(name string) (*sgx.Platform, error) {
	return sgx.NewPlatform(name, sgx.DefaultParams())
}

// fig5Kinds are the five systems of Figure 5, in the paper's order.
func fig5Kinds() []core.RuntimeKind {
	return []core.RuntimeKind{
		core.RuntimeNativeMusl,
		core.RuntimeNativeGlibc,
		core.RuntimeSconeSIM,
		core.RuntimeSconeHW,
		core.RuntimeGraphene,
	}
}

// fmtDur renders a duration in milliseconds for tables.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// fmtDurS renders a duration in seconds for tables.
func fmtDurS(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}
