package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/tf/dist"
)

// Fig8CompressRow is one point of the gradient-compression sweep: the
// fixed 4-worker, 2-shard training job pushed through one codec, with
// and without the network shield's TLS.
type Fig8CompressRow struct {
	// Codec labels the push-path gradient codec: "none", "int8" or
	// "topk f=…".
	Codec string
	// TLS marks the rows whose parameter traffic runs through the
	// network shield — the paper's Figure 8 "w/ TLS" series, whose gap
	// to the plain rows is exactly a wire-bytes story.
	TLS     bool
	Workers int
	Shards  int
	Steps   int
	// Latency is the end-to-end virtual time of the job.
	Latency time.Duration
	// PushWirePerShard is the mean per-shard, per-round virtual wire
	// time of the gradient pushes; it shrinks with the codec exactly as
	// the frame bytes do.
	PushWirePerShard time.Duration
	// PushBytesPerRound is the mean wire bytes of one worker's full
	// gradient push per round (summed over shards) — the quantity the
	// codec exists to shrink, independent of the bandwidth cost model.
	PushBytesPerRound int64
	// FinalLoss is the mean final minibatch loss over workers; the
	// lossy codecs' error-feedback residuals keep it within tolerance
	// of the uncompressed run.
	FinalLoss float64
}

// Figure8Compress extends Figure 8 along the wire-volume axis: the same
// 4-worker, 2-shard MNIST job pushed through each gradient codec —
// none (raw float32), int8 (per-tensor symmetric quantization, ~4×)
// and top-k at f = 0.05 (sparse index+value frames, ~10×+) — with and
// without TLS. The headline shape: push bytes and per-shard push wire
// time drop by the codec's ratio while the final loss stays within a
// few percent, because the worker-side error-feedback residual re-adds
// every rounded or dropped gradient entry to a later step.
func Figure8Compress(cfg Config) ([]Fig8CompressRow, error) {
	cfg = cfg.withDefaults()
	const workers, shards = 4, 2
	codecs := []struct {
		label string
		comp  dist.Compression
	}{
		{"none", dist.NoCompression()},
		{"int8", dist.Int8Compression()},
		{"topk f=0.05", dist.TopKCompression(0.05)},
	}
	systems := []fig8System{
		{"secureTF HW w/o TLS", core.RuntimeSconeHW, false},
		{"secureTF HW", core.RuntimeSconeHW, true},
	}
	var rows []Fig8CompressRow
	for _, sys := range systems {
		for _, codec := range codecs {
			stats, err := fig8Run(cfg, sys, workers, shards, codec.comp)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig8 compress %s tls=%v: %w", codec.label, sys.tls, err)
			}
			row := Fig8CompressRow{
				Codec: codec.label, TLS: sys.tls, Workers: workers, Shards: shards, Steps: cfg.Steps,
				Latency: stats.Latency, PushWirePerShard: stats.PushWirePerShard,
				PushBytesPerRound: stats.PushBytesPerRound, FinalLoss: stats.FinalLoss,
			}
			cfg.logf("fig8-compress: %-12s tls=%-5v %9.2f s  push %7d B/round (wire/shard %v, loss %.4f)",
				row.Codec, row.TLS, row.Latency.Seconds(), row.PushBytesPerRound, row.PushWirePerShard, row.FinalLoss)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintFigure8Compress renders the compression-sweep rows.
func PrintFigure8Compress(w io.Writer, rows []Fig8CompressRow) {
	fmt.Fprintln(w, "Figure 8 (compressed push) — gradient codecs on the push path")
	fmt.Fprintf(w, "%-14s %5s %8s %7s %6s %12s %14s %16s %10s\n",
		"codec", "tls", "workers", "shards", "steps", "latency(s)", "push-B/round", "push-wire/shard", "loss")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5v %8d %7d %6d %12s %14d %16s %10.4f\n",
			r.Codec, r.TLS, r.Workers, r.Shards, r.Steps, fmtDurS(r.Latency),
			r.PushBytesPerRound, r.PushWirePerShard, r.FinalLoss)
	}
}
