package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestFigure9ElasticShape pins the elasticity experiment's shape: the
// killed run still commits every round, books exactly one eviction and
// one shrunk round, and the survivors' round throughput stays within
// the detection timeout of the uninterrupted run's.
func TestFigure9ElasticShape(t *testing.T) {
	if testing.Short() {
		t.Skip("the eviction detection window is wall-clock; race-mode compute skew trips it")
	}
	rows, err := Figure9Elastic(Config{Steps: 4, BatchSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	base, kill := rows[0], rows[1]
	if base.Kills != 0 || base.Evictions != 0 || base.Rejoins != 0 || base.ShrunkRounds != 0 {
		t.Fatalf("uninterrupted run books elastic events: %+v", base)
	}
	if base.Rounds != 12 || kill.Rounds != 12 {
		t.Fatalf("rounds = %d/%d, want 12/12 — the kill must not cost committed rounds", base.Rounds, kill.Rounds)
	}
	if kill.Kills != 1 || kill.Evictions != 1 || kill.ShrunkRounds != 1 || kill.Rejoins != 0 {
		t.Fatalf("kill run books %+v, want exactly one eviction and one shrunk round", kill)
	}
	if kill.Latency <= base.Latency {
		t.Fatalf("kill latency %v not above baseline %v — the detection timeout was never charged", kill.Latency, base.Latency)
	}
	ratio := kill.RoundsPerSec / base.RoundsPerSec
	if ratio <= 0 || ratio >= 1 {
		t.Fatalf("survivor throughput ratio %.3f outside (0, 1)", ratio)
	}
	if ratio < 0.5 {
		t.Fatalf("survivor throughput ratio %.3f — the eviction cost more than the whole job", ratio)
	}

	var buf bytes.Buffer
	PrintFigure9Elastic(&buf, rows)
	for _, want := range []string{"Figure 9", "uninterrupted", "1 worker killed mid-job", "survivor throughput"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("print output missing %q:\n%s", want, buf.String())
		}
	}
}
