package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/securetf/securetf/internal/cas"
	"github.com/securetf/securetf/internal/cas/ias"
	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/sgx"
)

// Fig4Row is one bar group of Figure 4: the four legs of an attestation
// and key-transfer round.
type Fig4Row struct {
	System           string
	Initialization   time.Duration
	SendQuote        time.Duration
	WaitConfirmation time.Duration
	ReceiveKeys      time.Duration
}

// Total sums the legs.
func (r Fig4Row) Total() time.Duration {
	return r.Initialization + r.SendQuote + r.WaitConfirmation + r.ReceiveKeys
}

// Figure4 reproduces the attestation and key-transfer latency comparison
// between the traditional IAS flow and the secureTF CAS (paper Fig. 4:
// CAS ≈ 17 ms vs IAS ≈ 325 ms, quote verification < 1 ms vs ≈ 280 ms).
func Figure4(cfg Config) ([]Fig4Row, error) {
	cfg = cfg.withDefaults()
	secrets := map[string][]byte{"model-key": make([]byte, 32)}
	appImage := sgx.SyntheticImage("securetf-worker", 4<<20, 8<<20)

	// --- Traditional flow: enclave quote -> key server -> Intel IAS. ---
	cfg.logf("fig4: running traditional IAS flow")
	iasServerPlat, err := newPlatform("key-server")
	if err != nil {
		return nil, err
	}
	workerPlat, err := newPlatform("worker-node")
	if err != nil {
		return nil, err
	}
	enclave, err := workerPlat.CreateEnclave(appImage, sgx.ModeHW)
	if err != nil {
		return nil, err
	}
	iasServer, err := ias.NewServer(ias.ServerConfig{
		Platform:         iasServerPlat,
		TrustedPlatforms: core.TrustedKeys(workerPlat),
		Secrets:          secrets,
	})
	if err != nil {
		return nil, err
	}
	defer iasServer.Close()
	iasClient := &ias.Client{Enclave: enclave, Addr: iasServer.Addr()}
	_, iasTiming, err := iasClient.Attest()
	if err != nil {
		return nil, fmt.Errorf("experiments: IAS flow: %w", err)
	}

	// --- secureTF CAS flow: local DCAP verification. ---
	cfg.logf("fig4: running secureTF CAS flow")
	casPlat, err := newPlatform("cas-node")
	if err != nil {
		return nil, err
	}
	workerPlat2, err := newPlatform("worker-node-2")
	if err != nil {
		return nil, err
	}
	enclave2, err := workerPlat2.CreateEnclave(appImage, sgx.ModeHW)
	if err != nil {
		return nil, err
	}
	casServer, err := cas.NewServer(cas.ServerConfig{
		Platform:         casPlat,
		StoreFS:          fsapi.NewMem(),
		TrustedPlatforms: core.TrustedKeys(workerPlat2),
	})
	if err != nil {
		return nil, err
	}
	defer casServer.Close()
	casClient, err := cas.NewClient(cas.ClientConfig{
		Enclave:        enclave2,
		Addr:           casServer.Addr(),
		CASMeasurement: casServer.Measurement(),
		PlatformKeys:   core.TrustedKeys(casPlat, workerPlat2),
	})
	if err != nil {
		return nil, err
	}
	if err := casClient.Bootstrap(); err != nil {
		return nil, err
	}
	session := &cas.Session{
		Name:         "fig4",
		OwnerToken:   "tok",
		Measurements: []string{enclave2.Measurement().Hex()},
		Secrets:      secrets,
	}
	if err := casClient.Register(session); err != nil {
		return nil, err
	}
	_, casTiming, err := casClient.Attest("fig4")
	if err != nil {
		return nil, fmt.Errorf("experiments: CAS flow: %w", err)
	}

	return []Fig4Row{
		{
			System:           "IAS",
			Initialization:   iasTiming.Initialization,
			SendQuote:        iasTiming.SendQuote,
			WaitConfirmation: iasTiming.WaitConfirmation,
			ReceiveKeys:      iasTiming.ReceiveKeys,
		},
		{
			System:           "secureTF CAS",
			Initialization:   casTiming.Initialization,
			SendQuote:        casTiming.SendQuote,
			WaitConfirmation: casTiming.WaitConfirmation,
			ReceiveKeys:      casTiming.ReceiveKeys,
		},
	}, nil
}

// PrintFigure4 renders the rows as a table.
func PrintFigure4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4 — attestation and key-transfer latency (ms)")
	fmt.Fprintf(w, "%-14s %12s %12s %16s %12s %10s\n",
		"system", "init", "send-quote", "wait-confirm", "recv-keys", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12s %12s %16s %12s %10s\n",
			r.System, fmtDur(r.Initialization), fmtDur(r.SendQuote),
			fmtDur(r.WaitConfirmation), fmtDur(r.ReceiveKeys), fmtDur(r.Total()))
	}
}
