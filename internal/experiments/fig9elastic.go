package experiments

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/models"
	"github.com/securetf/securetf/internal/sgx"
	"github.com/securetf/securetf/internal/tf/dist"
)

// fig9Timeout is the elastic barrier's detection window: how long a
// round may stay incomplete before the missing workers are declared
// dead. It is charged to the shard clock when it fires, so it is also
// the virtual-time price of each eviction. It must comfortably exceed
// the wall-clock push skew of live workers (tens of milliseconds) so
// no one is evicted by scheduling jitter.
const fig9Timeout = time.Second

// Fig9Row is one scenario of the elasticity experiment (§3.2): the
// same synchronous sharded-PS training job run uninterrupted and with
// a worker killed halfway through, reporting the elastic barrier's
// bookkeeping and the round throughput the survivors sustain.
type Fig9Row struct {
	Scenario string
	Workers  int // workers at job start
	Kills    int // workers killed mid-job, never rejoining
	Shards   int
	Rounds   int // rounds committed by every shard
	// Latency is the end-to-end virtual time, the maximum over every
	// node clock; in the kill scenario it includes the detection
	// timeout the survivors wait out.
	Latency time.Duration
	// Evictions/Rejoins/ShrunkRounds are the elastic counters, the
	// maximum over shards (every shard observes the same dead workers).
	Evictions    int
	Rejoins      int
	ShrunkRounds int
	// RoundsPerSec is committed rounds per virtual second — the
	// throughput the elastic barrier preserves when workers die. A
	// non-elastic barrier scores zero here: the first dead worker
	// wedges the round forever.
	RoundsPerSec float64
}

// Figure9Elastic runs the worker-elasticity experiment: a 4-worker,
// 2-shard synchronous job on SGX hardware mode, first uninterrupted
// and then with one worker killed (no rejoin) at the halfway round.
// The elastic barrier evicts the dead worker after the detection
// timeout, shrinks to the three survivors and commits every remaining
// round — so the killed run still finishes all rounds, at a round
// throughput within the eviction timeout of the baseline's.
func Figure9Elastic(cfg Config) ([]Fig9Row, error) {
	cfg = cfg.withDefaults()
	const workers, shards = 4, 2
	// The one-time detection timeout only tells an elasticity story
	// when it amortizes over a realistic horizon, so this figure trains
	// three times the step budget the other figures use.
	rounds := 3 * cfg.Steps
	scenarios := []struct {
		label  string
		killAt int // round before which the last worker dies; -1 = never
	}{
		{"uninterrupted", -1},
		{"1 worker killed mid-job", rounds / 2},
	}
	var rows []Fig9Row
	for _, sc := range scenarios {
		row, err := fig9Run(cfg, workers, shards, rounds, sc.killAt)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig9 %s: %w", sc.label, err)
		}
		row.Scenario = sc.label
		cfg.logf("fig9: %-24s %9.2f s (%.3f rounds/vs, evictions=%d shrunk=%d)",
			sc.label, row.Latency.Seconds(), row.RoundsPerSec, row.Evictions, row.ShrunkRounds)
		rows = append(rows, row)
	}
	return rows, nil
}

// fig9Run trains `rounds` synchronous rounds on an elastic barrier.
// When killAt ≥ 0 the last worker stops stepping after killAt rounds
// and closes its connections — the crash the barrier must absorb.
func fig9Run(cfg Config, workers, shards, rounds, killAt int) (Fig9Row, error) {
	ref := models.MNISTCNN(1)
	initialVars := dist.InitialVars(ref.Graph)
	psPlats := make([]*sgx.Platform, shards)
	workerPlats := make([]*sgx.Platform, workers)
	addrs := make([]string, shards)
	servers := make([]*dist.ParameterServer, shards)
	for s := 0; s < shards; s++ {
		plat, err := newPlatform(fmt.Sprintf("fig9-ps-%d", s))
		if err != nil {
			return Fig9Row{}, err
		}
		psPlats[s] = plat
		container, err := core.Launch(core.Config{
			Kind:     core.RuntimeSconeHW,
			Platform: plat,
			Image:    TFFullImage(),
			HostFS:   fsapi.NewMem(),
		})
		if err != nil {
			return Fig9Row{}, err
		}
		defer container.Close()
		ln, err := container.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return Fig9Row{}, err
		}
		psDev := container.Device(1)
		ps, err := dist.NewParameterServer(dist.PSConfig{
			Listener:     ln,
			Vars:         initialVars,
			Workers:      workers,
			Shard:        s,
			Shards:       shards,
			LR:           0.0005,
			Clock:        plat.Clock(),
			Params:       plat.Params(),
			Elastic:      true,
			MinWorkers:   1,
			RoundTimeout: fig9Timeout,
			ApplyMeter: func(flops, bytes int64) {
				psDev.Compute(flops)
				psDev.Access(bytes, false)
			},
		})
		if err != nil {
			return Fig9Row{}, err
		}
		defer ps.Close()
		servers[s] = ps
		addrs[s] = ln.Addr().String()
	}

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		steps := rounds
		if killAt >= 0 && w == workers-1 {
			steps = killAt
		}
		wg.Add(1)
		go func(w, steps int) {
			defer wg.Done()
			plat, err := newPlatform(fmt.Sprintf("fig9-worker-%d", w))
			if err != nil {
				errs[w] = err
				return
			}
			workerPlats[w] = plat
			container, err := core.Launch(core.Config{
				Kind:     core.RuntimeSconeHW,
				Platform: plat,
				Image:    TFFullImage(),
				HostFS:   fsapi.NewMem(),
			})
			if err != nil {
				errs[w] = err
				return
			}
			defer container.Close()
			xs, ys := syntheticMNISTShard(cfg.BatchSize*rounds, int64(900+w))
			h := models.MNISTCNN(1)
			worker, err := dist.NewWorker(dist.WorkerConfig{
				ID:    w,
				Addrs: addrs,
				Dial:  func(network, a string) (net.Conn, error) { return container.Dial(network, a, "") },
				Model: dist.Model{Graph: h.Graph, X: h.X, Y: h.Y, Loss: h.Loss, Logits: h.Logits},
				XS:    xs, YS: ys,
				BatchSize: cfg.BatchSize,
				Device:    container.Device(0),
				Clock:     plat.Clock(),
				Params:    plat.Params(),
			})
			if err != nil {
				errs[w] = err
				return
			}
			defer worker.Close()
			if err := worker.RunSteps(steps); err != nil {
				errs[w] = err
			}
		}(w, steps)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Fig9Row{}, err
		}
	}

	row := Fig9Row{Workers: workers, Shards: shards}
	if killAt >= 0 {
		row.Kills = 1
	}
	for s, ps := range servers {
		if r := ps.Rounds(); s == 0 || r < row.Rounds {
			row.Rounds = r
		}
		st := ps.Stats()
		if st.Evictions > row.Evictions {
			row.Evictions = st.Evictions
		}
		if st.Rejoins > row.Rejoins {
			row.Rejoins = st.Rejoins
		}
		if st.ShrunkRounds > row.ShrunkRounds {
			row.ShrunkRounds = st.ShrunkRounds
		}
	}
	if row.Rounds != rounds {
		return Fig9Row{}, fmt.Errorf("experiments: fig9 committed %d rounds, want %d", row.Rounds, rounds)
	}
	for _, p := range append(append([]*sgx.Platform(nil), psPlats...), workerPlats...) {
		if t := p.Clock().Now(); t > row.Latency {
			row.Latency = t
		}
	}
	if row.Latency > 0 {
		row.RoundsPerSec = float64(row.Rounds) / row.Latency.Seconds()
	}
	return row, nil
}

// PrintFigure9Elastic renders the elasticity rows.
func PrintFigure9Elastic(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9 — worker elasticity: round throughput across a mid-job kill")
	fmt.Fprintf(w, "%-24s %8s %6s %7s %7s %12s %10s %7s %13s\n",
		"scenario", "workers", "kills", "shards", "rounds", "latency(s)", "evictions", "shrunk", "rounds/vs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %8d %6d %7d %7d %12s %10d %7d %13.3f\n",
			r.Scenario, r.Workers, r.Kills, r.Shards, r.Rounds, fmtDurS(r.Latency), r.Evictions, r.ShrunkRounds, r.RoundsPerSec)
	}
	if len(rows) == 2 && rows[0].RoundsPerSec > 0 {
		fmt.Fprintf(w, "survivor throughput: %.2fx of the uninterrupted run\n",
			rows[1].RoundsPerSec/rows[0].RoundsPerSec)
	}
}
