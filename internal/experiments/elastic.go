package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/securetf/securetf/internal/cas"
	"github.com/securetf/securetf/internal/cas/ias"
	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/sgx"
)

// ElasticScaling reproduces design challenge ➍ (§3.2): a public-cloud
// autoscaler spawns n new service containers in response to load, and
// each must be attested before it may handle requests. The function
// returns the total attestation latency of the wave through the local
// CAS and through the traditional IAS flow — the gap that makes IAS
// "impractical in this setting".
func ElasticScaling(n int) (casTotal, iasTotal time.Duration, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("experiments: elastic scaling needs n > 0, got %d", n)
	}
	appImage := sgx.SyntheticImage("securetf-worker", 4<<20, 8<<20)
	secrets := map[string][]byte{"model-key": make([]byte, 32)}

	// One worker platform hosts the whole wave (the paper scales
	// containers, not machines).
	workerPlat, err := newPlatform("autoscale-node")
	if err != nil {
		return 0, 0, err
	}

	// --- CAS wave. ---
	casPlat, err := newPlatform("cas-node")
	if err != nil {
		return 0, 0, err
	}
	casServer, err := cas.NewServer(cas.ServerConfig{
		Platform:         casPlat,
		StoreFS:          fsapi.NewMem(),
		TrustedPlatforms: core.TrustedKeys(workerPlat),
	})
	if err != nil {
		return 0, 0, err
	}
	defer casServer.Close()

	for i := 0; i < n; i++ {
		enclave, err := workerPlat.CreateEnclave(appImage, sgx.ModeHW)
		if err != nil {
			return 0, 0, err
		}
		client, err := cas.NewClient(cas.ClientConfig{
			Enclave:        enclave,
			Addr:           casServer.Addr(),
			CASMeasurement: casServer.Measurement(),
			PlatformKeys:   core.TrustedKeys(casPlat, workerPlat),
		})
		if err != nil {
			return 0, 0, err
		}
		if err := client.Bootstrap(); err != nil {
			return 0, 0, err
		}
		if i == 0 {
			if err := client.Register(&cas.Session{
				Name:         "autoscale",
				OwnerToken:   "tok",
				Measurements: []string{enclave.Measurement().Hex()},
				Secrets:      secrets,
			}); err != nil {
				return 0, 0, err
			}
		}
		_, timing, err := client.Attest("autoscale")
		if err != nil {
			return 0, 0, fmt.Errorf("experiments: CAS attest container %d: %w", i, err)
		}
		casTotal += timing.Total()
		enclave.Destroy()
	}

	// --- IAS wave. ---
	iasPlat, err := newPlatform("key-server")
	if err != nil {
		return 0, 0, err
	}
	iasServer, err := ias.NewServer(ias.ServerConfig{
		Platform:         iasPlat,
		TrustedPlatforms: core.TrustedKeys(workerPlat),
		Secrets:          secrets,
	})
	if err != nil {
		return 0, 0, err
	}
	defer iasServer.Close()
	for i := 0; i < n; i++ {
		enclave, err := workerPlat.CreateEnclave(appImage, sgx.ModeHW)
		if err != nil {
			return 0, 0, err
		}
		client := &ias.Client{Enclave: enclave, Addr: iasServer.Addr()}
		_, timing, err := client.Attest()
		if err != nil {
			return 0, 0, fmt.Errorf("experiments: IAS attest container %d: %w", i, err)
		}
		iasTotal += timing.Total()
		enclave.Destroy()
	}
	return casTotal, iasTotal, nil
}

// PrintElasticScaling renders the elastic-scaling comparison.
func PrintElasticScaling(w io.Writer, n int, casTotal, iasTotal time.Duration) {
	fmt.Fprintf(w, "Elastic scaling — attesting a wave of %d new containers (challenge ➍)\n", n)
	fmt.Fprintf(w, "%-14s %16s %18s\n", "flow", "total (ms)", "per container (ms)")
	fmt.Fprintf(w, "%-14s %16.1f %18.1f\n", "IAS", float64(iasTotal)/1e6, float64(iasTotal)/1e6/float64(n))
	fmt.Fprintf(w, "%-14s %16.1f %18.1f\n", "secureTF CAS", float64(casTotal)/1e6, float64(casTotal)/1e6/float64(n))
	if casTotal > 0 {
		fmt.Fprintf(w, "speedup: %.1fx\n", float64(iasTotal)/float64(casTotal))
	}
}
