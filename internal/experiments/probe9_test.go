package experiments

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"github.com/securetf/securetf/internal/core"
	"github.com/securetf/securetf/internal/fsapi"
	"github.com/securetf/securetf/internal/models"
	"github.com/securetf/securetf/internal/tf/dist"
)

func TestFig8ProbeHW(t *testing.T) {
	for _, workers := range []int{1, 2} {
		psPlat, _ := newPlatform("ps")
		psC, _ := core.Launch(core.Config{Kind: core.RuntimeSconeHW, Platform: psPlat, Image: TFFullImage(), HostFS: fsapi.NewMem()})
		ln, _ := psC.Listen("tcp", "127.0.0.1:0")
		ref := models.MNISTCNN(1)
		vars := dist.InitialVars(ref.Graph)
		ps, _ := dist.NewParameterServer(dist.PSConfig{Listener: ln, Vars: vars, Workers: workers, LR: 0.0005, Clock: psPlat.Clock(), Params: psPlat.Params()})
		rounds := 6 / workers
		var wg sync.WaitGroup
		for id := 0; id < workers; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				wPlat, _ := newPlatform(fmt.Sprintf("w%d", id))
				wC, _ := core.Launch(core.Config{Kind: core.RuntimeSconeHW, Platform: wPlat, Image: TFFullImage(), HostFS: fsapi.NewMem()})
				defer wC.Close()
				xs, ys := syntheticMNISTShard(50*rounds, int64(id))
				h := models.MNISTCNN(1)
				w, err := dist.NewWorker(dist.WorkerConfig{ID: id, Addr: ln.Addr().String(),
					Dial:  func(nw, a string) (net.Conn, error) { return wC.Dial(nw, a, "") },
					Model: dist.Model{Graph: h.Graph, X: h.X, Y: h.Y, Loss: h.Loss},
					XS:    xs, YS: ys, BatchSize: 50, Device: wC.Device(0), Clock: wPlat.Clock(), Params: wPlat.Params()})
				if err != nil {
					t.Error(err)
					return
				}
				defer w.Close()
				for r := 0; r < rounds; r++ {
					if err := w.Step(); err != nil {
						t.Error(err)
						return
					}
					fmt.Printf("N=%d worker%d round %d: wclock=%v pull=%v compute=%v push=%v\n",
						workers, id, r, wPlat.Clock().Now(), w.LastBreakdown.Pull, w.LastBreakdown.Compute, w.LastBreakdown.Push)
				}
			}(id)
		}
		wg.Wait()
		fmt.Printf("N=%d final ps clock %v (rounds=%d)\n", workers, psPlat.Clock().Now(), ps.Rounds())
		ps.Close()
		psC.Close()
	}
}
