package vtime

import (
	"sync"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	var c Clock
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if got, want := c.Now(), 5*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got, want := c.Now(), time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceToMovesForwardOnly(t *testing.T) {
	var c Clock
	c.Advance(10 * time.Millisecond)
	c.AdvanceTo(5 * time.Millisecond) // behind: no-op
	if got, want := c.Now(), 10*time.Millisecond; got != want {
		t.Fatalf("after backwards AdvanceTo: Now() = %v, want %v", got, want)
	}
	c.AdvanceTo(25 * time.Millisecond)
	if got, want := c.Now(), 25*time.Millisecond; got != want {
		t.Fatalf("after forwards AdvanceTo: Now() = %v, want %v", got, want)
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.Advance(time.Minute)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("after Reset: Now() = %v, want 0", got)
	}
}

func TestSpanMeasuresElapsed(t *testing.T) {
	var c Clock
	c.Advance(time.Millisecond)
	sp := c.Start()
	c.Advance(7 * time.Millisecond)
	if got, want := sp.Stop(), 7*time.Millisecond; got != want {
		t.Fatalf("Span = %v, want %v", got, want)
	}
}

func TestConcurrentAdvance(t *testing.T) {
	var c Clock
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), workers*perWorker*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestConcurrentAdvanceTo(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 1; i <= 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.AdvanceTo(time.Duration(i) * time.Millisecond)
		}(i)
	}
	wg.Wait()
	if got, want := c.Now(), 100*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want max %v", got, want)
	}
}

func TestStopwatchVirtual(t *testing.T) {
	var c Clock
	sw := NewStopwatch(&c)
	c.Advance(42 * time.Millisecond)
	if got, want := sw.Virtual(), 42*time.Millisecond; got != want {
		t.Fatalf("Virtual() = %v, want %v", got, want)
	}
	if sw.Wall() < 0 {
		t.Fatalf("Wall() negative")
	}
}
