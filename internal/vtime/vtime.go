// Package vtime provides the virtual clock used by the secureTF simulation
// substrate.
//
// All enclave-related costs (EPC paging, enclave transitions, WAN round
// trips, crypto throughput) are charged to a virtual clock rather than
// slept on the wall clock. This keeps experiments deterministic and fast
// while preserving the performance shape reported by the paper. Wall-clock
// time of real computation can be mixed in by callers that want measured
// mode (see Clock.ChargeWall).
package vtime

import (
	"sync/atomic"
	"time"
)

// Clock is a monotonically increasing virtual clock. The zero value is
// ready to use and starts at virtual time zero.
//
// Clock is safe for concurrent use. Charges from concurrent goroutines
// accumulate; use Span to model critical paths where concurrent work
// overlaps instead of serializing.
type Clock struct {
	nanos atomic.Int64
}

// Now returns the current virtual time as a duration since the clock's
// origin.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.nanos.Load())
}

// Advance moves the clock forward by d. Negative durations are ignored so
// that derived cost computations can never move time backwards.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.nanos.Add(int64(d))
}

// AdvanceTo moves the clock forward to at least t. It is a no-op if the
// clock is already past t. AdvanceTo is used to merge the completion times
// of parallel activities: each branch computes its own finish time and the
// joining goroutine advances to the maximum.
func (c *Clock) AdvanceTo(t time.Duration) {
	for {
		cur := c.nanos.Load()
		if int64(t) <= cur {
			return
		}
		if c.nanos.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Reset rewinds the clock to zero. Intended for test and experiment
// harnesses that reuse a platform across runs.
func (c *Clock) Reset() {
	c.nanos.Store(0)
}

// Span measures a region of virtual time. It is created by Start and
// closed by Stop, which reports the elapsed virtual duration.
type Span struct {
	clock *Clock
	start time.Duration
}

// Start opens a span at the current virtual time.
func (c *Clock) Start() Span {
	return Span{clock: c, start: c.Now()}
}

// Stop returns the virtual time elapsed since the span was started.
func (s Span) Stop() time.Duration {
	return s.clock.Now() - s.start
}

// Stopwatch combines virtual and wall time measurement, so harnesses can
// report both the simulated latency and the real cost of producing it.
type Stopwatch struct {
	clock     *Clock
	vStart    time.Duration
	wallStart time.Time
}

// NewStopwatch starts a stopwatch against the given clock.
func NewStopwatch(c *Clock) *Stopwatch {
	return &Stopwatch{clock: c, vStart: c.Now(), wallStart: time.Now()}
}

// Virtual returns the elapsed virtual time.
func (s *Stopwatch) Virtual() time.Duration { return s.clock.Now() - s.vStart }

// Wall returns the elapsed wall-clock time.
func (s *Stopwatch) Wall() time.Duration { return time.Since(s.wallStart) }
