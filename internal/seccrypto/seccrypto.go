// Package seccrypto collects the cryptographic primitives shared by the
// secureTF substrate: authenticated encryption (AES-256-GCM), HKDF-SHA256
// key derivation, and ECDSA P-256 signing as used for enclave quotes and
// TLS identities.
//
// Everything here wraps the Go standard library; no custom cryptography is
// implemented beyond composition.
package seccrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// KeySize is the symmetric key size in bytes (AES-256).
const KeySize = 32

// Key is a symmetric encryption key.
type Key [KeySize]byte

var (
	// ErrCiphertextTooShort reports a ciphertext shorter than a nonce.
	ErrCiphertextTooShort = errors.New("seccrypto: ciphertext too short")
	// ErrAuthentication reports a failed GCM tag check, i.e. tampering.
	ErrAuthentication = errors.New("seccrypto: message authentication failed")
)

// NewRandomKey generates a fresh random key.
func NewRandomKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return Key{}, fmt.Errorf("seccrypto: generating key: %w", err)
	}
	return k, nil
}

// Seal encrypts and authenticates plaintext with the key, binding the
// additional data aad. The returned ciphertext embeds a random nonce as a
// prefix and can be decrypted with Open.
func Seal(key Key, plaintext, aad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize(), aead.NonceSize()+len(plaintext)+aead.Overhead())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("seccrypto: generating nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, plaintext, aad), nil
}

// Open authenticates and decrypts a ciphertext produced by Seal with the
// same key and additional data. It returns ErrAuthentication if the
// ciphertext or aad were modified.
func Open(key Key, ciphertext, aad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < aead.NonceSize() {
		return nil, ErrCiphertextTooShort
	}
	nonce, ct := ciphertext[:aead.NonceSize()], ciphertext[aead.NonceSize():]
	pt, err := aead.Open(nil, nonce, ct, aad)
	if err != nil {
		return nil, ErrAuthentication
	}
	return pt, nil
}

// SealDeterministic encrypts with a caller-provided nonce. It exists for
// chunk stores that derive a unique nonce per (file, chunk, epoch) and must
// not pay the ciphertext expansion of a stored nonce. The caller is
// responsible for nonce uniqueness per key.
func SealDeterministic(key Key, nonce [12]byte, plaintext, aad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	return aead.Seal(nil, nonce[:], plaintext, aad), nil
}

// OpenDeterministic reverses SealDeterministic.
func OpenDeterministic(key Key, nonce [12]byte, ciphertext, aad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	pt, err := aead.Open(nil, nonce[:], ciphertext, aad)
	if err != nil {
		return nil, ErrAuthentication
	}
	return pt, nil
}

func newGCM(key Key) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("seccrypto: creating cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: creating GCM: %w", err)
	}
	return aead, nil
}

// HKDF derives a key of KeySize bytes from the input keying material using
// HKDF-SHA256 (RFC 5869) with the given salt and info strings.
func HKDF(ikm []byte, salt, info string) Key {
	// Extract.
	ext := hmac.New(sha256.New, []byte(salt))
	ext.Write(ikm)
	prk := ext.Sum(nil)
	// Expand: a single block suffices for 32-byte output.
	exp := hmac.New(sha256.New, prk)
	exp.Write([]byte(info))
	exp.Write([]byte{1})
	var k Key
	copy(k[:], exp.Sum(nil))
	return k
}

// PRG is a deterministic pseudo-random generator: AES-256-CTR over an
// all-zero stream, keyed by a Key (typically derived with HKDF). Two
// parties holding the same key produce byte-identical streams, which is
// what the federated secure-aggregation masks and the per-round client
// sampling rely on — no math/rand, no global state, no RNG on hot
// paths. A PRG is NOT safe for concurrent use; derive one per
// goroutine.
type PRG struct {
	stream cipher.Stream
	// buf holds one carry word for Uint64, refilled 512 bytes at a time
	// so short reads do not pay per-call CTR setup.
	buf []byte
	off int
}

// NewPRG returns a deterministic generator over the given key.
func NewPRG(key Key) *PRG {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		// aes.NewCipher only fails on a bad key size, impossible here.
		panic(fmt.Sprintf("seccrypto: PRG cipher: %v", err))
	}
	var iv [aes.BlockSize]byte
	return &PRG{stream: cipher.NewCTR(block, iv[:])}
}

// Read fills p with deterministic pseudo-random bytes. It never fails.
func (g *PRG) Read(p []byte) {
	for i := range p {
		p[i] = 0
	}
	g.stream.XORKeyStream(p, p)
}

// Uint64 returns the next 64-bit word of the stream.
func (g *PRG) Uint64() uint64 {
	if g.off == len(g.buf) {
		if g.buf == nil {
			g.buf = make([]byte, 512)
		}
		g.Read(g.buf)
		g.off = 0
	}
	v := binary.LittleEndian.Uint64(g.buf[g.off:])
	g.off += 8
	return v
}

// Intn returns a uniform integer in [0, n). It uses rejection sampling,
// so the distribution carries no modulo bias. n must be positive.
func (g *PRG) Intn(n int) int {
	if n <= 0 {
		panic("seccrypto: PRG.Intn on non-positive bound")
	}
	limit := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		if v := g.Uint64(); v < limit {
			return int(v % uint64(n))
		}
	}
}

// Perm returns a deterministic pseudo-random permutation of [0, n) —
// a Fisher-Yates shuffle driven by the generator.
func (g *PRG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// SigningKey is an ECDSA P-256 private key used for quotes and
// certificates.
type SigningKey struct {
	priv *ecdsa.PrivateKey
}

// NewSigningKey generates a fresh P-256 signing key.
func NewSigningKey() (*SigningKey, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: generating signing key: %w", err)
	}
	return &SigningKey{priv: priv}, nil
}

// Public returns the public half of the key.
func (k *SigningKey) Public() *ecdsa.PublicKey { return &k.priv.PublicKey }

// Private exposes the underlying private key for x509 certificate
// issuance. Callers must not mutate it.
func (k *SigningKey) Private() *ecdsa.PrivateKey { return k.priv }

// Sign produces an ASN.1 ECDSA signature over SHA-256(msg).
func (k *SigningKey) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := ecdsa.SignASN1(rand.Reader, k.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("seccrypto: signing: %w", err)
	}
	return sig, nil
}

// Verify checks an ASN.1 ECDSA signature over SHA-256(msg).
func Verify(pub *ecdsa.PublicKey, msg, sig []byte) bool {
	digest := sha256.Sum256(msg)
	return ecdsa.VerifyASN1(pub, digest[:], sig)
}
