package seccrypto

import (
	"bytes"
	"crypto/x509"
	"testing"
	"testing/quick"
)

func TestSealOpenRoundTrip(t *testing.T) {
	key, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("the model weights are confidential")
	aad := []byte("context")
	ct, err := Seal(key, pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(key, ct, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip mismatch: got %q want %q", got, pt)
	}
}

func TestOpenDetectsTampering(t *testing.T) {
	key, _ := NewRandomKey()
	ct, err := Seal(key, []byte("payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ct); i += 7 {
		mutated := append([]byte(nil), ct...)
		mutated[i] ^= 0x01
		if _, err := Open(key, mutated, nil); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
}

func TestOpenRejectsWrongAAD(t *testing.T) {
	key, _ := NewRandomKey()
	ct, err := Seal(key, []byte("payload"), []byte("right"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(key, ct, []byte("wrong")); err == nil {
		t.Fatal("wrong AAD accepted")
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	k1, _ := NewRandomKey()
	k2, _ := NewRandomKey()
	ct, err := Seal(k1, []byte("payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(k2, ct, nil); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestOpenShortCiphertext(t *testing.T) {
	key, _ := NewRandomKey()
	if _, err := Open(key, []byte{1, 2, 3}, nil); err == nil {
		t.Fatal("short ciphertext accepted")
	}
}

func TestSealRoundTripProperty(t *testing.T) {
	key, _ := NewRandomKey()
	f := func(pt, aad []byte) bool {
		ct, err := Seal(key, pt, aad)
		if err != nil {
			return false
		}
		got, err := Open(key, ct, aad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicSealRoundTrip(t *testing.T) {
	key, _ := NewRandomKey()
	var nonce [12]byte
	nonce[0] = 42
	pt := []byte("chunk data")
	ct, err := SealDeterministic(key, nonce, pt, []byte("chunk-0"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenDeterministic(key, nonce, ct, []byte("chunk-0"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("deterministic round trip mismatch")
	}
	// Wrong nonce must fail.
	var wrong [12]byte
	if _, err := OpenDeterministic(key, wrong, ct, []byte("chunk-0")); err == nil {
		t.Fatal("wrong nonce accepted")
	}
}

func TestHKDFDeterministicAndDomainSeparated(t *testing.T) {
	ikm := []byte("input keying material")
	a := HKDF(ikm, "salt", "info")
	b := HKDF(ikm, "salt", "info")
	if a != b {
		t.Fatal("HKDF not deterministic")
	}
	if HKDF(ikm, "salt", "other") == a {
		t.Fatal("HKDF ignores info")
	}
	if HKDF(ikm, "other", "info") == a {
		t.Fatal("HKDF ignores salt")
	}
	if HKDF([]byte("different"), "salt", "info") == a {
		t.Fatal("HKDF ignores ikm")
	}
}

func TestSignVerify(t *testing.T) {
	k, err := NewSigningKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("attestation report")
	sig, err := k.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(k.Public(), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(k.Public(), []byte("other message"), sig) {
		t.Fatal("signature valid for different message")
	}
	k2, _ := NewSigningKey()
	if Verify(k2.Public(), msg, sig) {
		t.Fatal("signature valid under different key")
	}
}

func TestCAIssueAndVerifyChain(t *testing.T) {
	ca, err := NewCA("securetf-test-ca")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue("worker-1", "localhost", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(leaf.Certificate) != 2 {
		t.Fatalf("chain length = %d, want 2", len(leaf.Certificate))
	}
}

func TestCACertExports(t *testing.T) {
	ca, err := NewCA("test-ca")
	if err != nil {
		t.Fatal(err)
	}
	der := ca.CertDER()
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatalf("CertDER not parseable: %v", err)
	}
	if cert.Subject.CommonName != "test-ca" {
		t.Fatalf("CA common name %q", cert.Subject.CommonName)
	}
	if !cert.IsCA {
		t.Fatal("CA certificate not marked as CA")
	}

	// An issued leaf must verify against the exported pool.
	leaf, err := ca.Issue("svc", "localhost")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := x509.ParseCertificate(leaf.Certificate[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parsed.Verify(x509.VerifyOptions{
		Roots:   ca.CertPool(),
		DNSName: "localhost",
	}); err != nil {
		t.Fatalf("leaf does not verify against CertPool: %v", err)
	}
	// And must not verify against an unrelated CA's pool.
	other, err := NewCA("other-ca")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parsed.Verify(x509.VerifyOptions{Roots: other.CertPool(), DNSName: "localhost"}); err == nil {
		t.Fatal("leaf verified against a foreign CA")
	}
}
