package seccrypto

import (
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// CA is an in-memory certificate authority. The secureTF CAS generates a CA
// inside its enclave so that, per the paper (§7.3), TLS certificates "are
// generated inside the SGX enclave running CAS, and thus they cannot be
// seen by any human".
type CA struct {
	key  *SigningKey
	cert *x509.Certificate
	der  []byte
}

// NewCA creates a self-signed certificate authority with the given common
// name.
func NewCA(commonName string) (*CA, error) {
	key, err := NewSigningKey()
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          newSerial(),
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"secureTF"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, key.Public(), key.Private())
	if err != nil {
		return nil, fmt.Errorf("seccrypto: creating CA certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: parsing CA certificate: %w", err)
	}
	return &CA{key: key, cert: cert, der: der}, nil
}

// CertPool returns a pool containing only this CA, for pinning.
func (ca *CA) CertPool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.cert)
	return pool
}

// CertDER returns the DER encoding of the CA certificate.
func (ca *CA) CertDER() []byte {
	out := make([]byte, len(ca.der))
	copy(out, ca.der)
	return out
}

// Issue creates a leaf certificate for the given common name, usable for
// both server and client authentication. Hostnames and IP literals in
// hosts become subject alternative names.
func (ca *CA) Issue(commonName string, hosts ...string) (tls.Certificate, error) {
	key, err := NewSigningKey()
	if err != nil {
		return tls.Certificate{}, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: newSerial(),
		Subject:      pkix.Name{CommonName: commonName, Organization: []string{"secureTF"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
	// The common name doubles as a SAN so that service identities like
	// "worker-0" verify regardless of transport address.
	tmpl.DNSNames = append(tmpl.DNSNames, commonName)
	for _, h := range hosts {
		if h == commonName {
			continue
		}
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, key.Public(), ca.key.Private())
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("seccrypto: issuing certificate for %q: %w", commonName, err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der, ca.der},
		PrivateKey:  key.Private(),
	}, nil
}

func newSerial() *big.Int {
	limit := new(big.Int).Lsh(big.NewInt(1), 128)
	serial, err := rand.Int(rand.Reader, limit)
	if err != nil {
		// rand.Int only fails if the reader fails, which crypto/rand
		// treats as a fatal environment error.
		panic(fmt.Sprintf("seccrypto: generating serial: %v", err))
	}
	return serial
}
