package seccrypto

import "testing"

func TestPRGDeterministic(t *testing.T) {
	key := HKDF([]byte("seed material"), "prg-test", "stream")
	a, b := NewPRG(key), NewPRG(key)
	bufA, bufB := make([]byte, 1024), make([]byte, 1024)
	a.Read(bufA)
	b.Read(bufB)
	if string(bufA) != string(bufB) {
		t.Fatal("same key produced different streams")
	}
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("Uint64 diverged at word %d: %d vs %d", i, x, y)
		}
	}
}

func TestPRGKeySeparation(t *testing.T) {
	a := NewPRG(HKDF([]byte("seed"), "prg-test", "a"))
	b := NewPRG(HKDF([]byte("seed"), "prg-test", "b"))
	bufA, bufB := make([]byte, 256), make([]byte, 256)
	a.Read(bufA)
	b.Read(bufB)
	if string(bufA) == string(bufB) {
		t.Fatal("distinct keys produced identical streams")
	}
}

func TestPRGReadOverwritesInput(t *testing.T) {
	// Read must not XOR into caller garbage: two differently pre-filled
	// buffers at the same stream position must come out identical.
	key := HKDF([]byte("seed"), "prg-test", "overwrite")
	a, b := NewPRG(key), NewPRG(key)
	bufA := make([]byte, 64)
	bufB := make([]byte, 64)
	for i := range bufB {
		bufB[i] = 0xff
	}
	a.Read(bufA)
	b.Read(bufB)
	if string(bufA) != string(bufB) {
		t.Fatal("Read output depends on prior buffer contents")
	}
}

func TestPRGIntnBoundsAndCoverage(t *testing.T) {
	g := NewPRG(HKDF([]byte("seed"), "prg-test", "intn"))
	seen := make(map[int]int)
	const n = 7
	for i := 0; i < 10_000; i++ {
		v := g.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) returned %d", n, v)
		}
		seen[v]++
	}
	for v := 0; v < n; v++ {
		if seen[v] == 0 {
			t.Fatalf("Intn(%d) never produced %d in 10k draws", n, v)
		}
	}
}

func TestPRGPermIsPermutation(t *testing.T) {
	g := NewPRG(HKDF([]byte("seed"), "prg-test", "perm"))
	p := g.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid or duplicate element %d", v)
		}
		seen[v] = true
	}
	// Deterministic: same key, same permutation.
	q := NewPRG(HKDF([]byte("seed"), "prg-test", "perm")).Perm(100)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("Perm is not deterministic for a fixed key")
		}
	}
}
