package sgx

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/securetf/securetf/internal/vtime"
)

// Enclave is one loaded enclave instance. It tracks its resident memory
// segments against the platform EPC and charges virtual time for enclave
// transitions, memory traffic and paging according to its Mode.
//
// Enclave is safe for concurrent use.
type Enclave struct {
	id          uint64
	platform    *Platform
	mode        Mode
	image       Image
	measurement Measurement

	mu        sync.Mutex
	destroyed bool
	resident  int64 // bytes resident in this enclave (binary+heap+segments)
	readOnly  int64 // read-only portion of resident (code, streamed weights)
	segments  map[string]segment

	stats Stats
}

// segment is one named long-lived allocation.
type segment struct {
	bytes    int64
	readOnly bool
}

// Stats aggregates the cost-relevant events of an enclave's lifetime.
// Counters are cumulative and safe to read concurrently via Stats().
type Stats struct {
	Transitions   atomic.Int64 // enclave enter/exit round trips
	AsyncSyscalls atomic.Int64 // syscalls served by the async queue
	PageFaults    atomic.Int64 // EPC page-in events charged
	BytesAccessed atomic.Int64 // memory traffic charged through Access
	ComputeFLOPs  atomic.Int64 // analytic FLOPs charged through Compute
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Transitions   int64
	AsyncSyscalls int64
	PageFaults    int64
	BytesAccessed int64
	ComputeFLOPs  int64
}

// Mode returns the enclave's execution mode.
func (e *Enclave) Mode() Mode { return e.mode }

// Measurement returns the enclave's MRENCLAVE-equivalent identity.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Platform returns the owning platform.
func (e *Enclave) Platform() *Platform { return e.platform }

// Clock returns the platform virtual clock.
func (e *Enclave) Clock() *vtime.Clock { return e.platform.clock }

// Image returns the image the enclave was created from.
func (e *Enclave) Image() Image { return e.image }

// Stats returns a snapshot of the enclave's cumulative cost counters.
func (e *Enclave) Stats() StatsSnapshot {
	return StatsSnapshot{
		Transitions:   e.stats.Transitions.Load(),
		AsyncSyscalls: e.stats.AsyncSyscalls.Load(),
		PageFaults:    e.stats.PageFaults.Load(),
		BytesAccessed: e.stats.BytesAccessed.Load(),
		ComputeFLOPs:  e.stats.ComputeFLOPs.Load(),
	}
}

// Destroy tears the enclave down and releases its EPC accounting. Using a
// destroyed enclave is a programming error and returns ErrDestroyed from
// operations that can fail.
func (e *Enclave) Destroy() {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return
	}
	e.destroyed = true
	e.mu.Unlock()
	e.platform.destroyEnclave(e)
}

func (e *Enclave) residentBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.resident
}

// ResidentBytes reports the enclave's current resident footprint.
func (e *Enclave) ResidentBytes() int64 { return e.residentBytes() }

// Alloc registers a named writable long-lived allocation (arenas,
// variables, per-thread state) against the enclave's resident set.
// Allocating the same name again replaces the previous size.
func (e *Enclave) Alloc(name string, bytes int64) {
	e.alloc(name, bytes, false)
}

// AllocReadOnly registers a read-only allocation (streamed model
// weights). Read-only pages are cheap to evict under EPC pressure — no
// write-back — which is the mechanism behind TensorFlow Lite's graceful
// degradation in the paper's Figure 5.
func (e *Enclave) AllocReadOnly(name string, bytes int64) {
	e.alloc(name, bytes, true)
}

func (e *Enclave) alloc(name string, bytes int64, readOnly bool) {
	if bytes < 0 {
		bytes = 0
	}
	e.mu.Lock()
	if e.segments == nil {
		e.segments = make(map[string]segment)
	}
	prev := e.segments[name]
	e.segments[name] = segment{bytes: bytes, readOnly: readOnly}
	e.resident += bytes - prev.bytes
	if prev.readOnly {
		e.readOnly -= prev.bytes
	}
	if readOnly {
		e.readOnly += bytes
	}
	mode := e.mode
	e.mu.Unlock()
	if mode == ModeHW {
		e.platform.adjustResident(bytes - prev.bytes)
	}
}

// Free releases a named allocation.
func (e *Enclave) Free(name string) {
	e.mu.Lock()
	prev, ok := e.segments[name]
	if ok {
		delete(e.segments, name)
		e.resident -= prev.bytes
		if prev.readOnly {
			e.readOnly -= prev.bytes
		}
	}
	mode := e.mode
	e.mu.Unlock()
	if ok && mode == ModeHW {
		e.platform.adjustResident(-prev.bytes)
	}
}

// dirtyFraction estimates the writable share of the resident set.
func (e *Enclave) dirtyFraction() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.resident <= 0 {
		return 0
	}
	dirty := e.resident - e.readOnly - e.image.Size() // code pages are clean
	if dirty < 0 {
		dirty = 0
	}
	return float64(dirty) / float64(e.resident)
}

// Transition charges one enclave round trip (ECALL/OCALL pair). In SIM
// mode transitions are ordinary function calls and cost nothing.
func (e *Enclave) Transition() {
	e.stats.Transitions.Add(1)
	if e.mode == ModeHW {
		e.platform.clock.Advance(e.platform.params.TransitionCost)
	}
}

// AsyncSyscall charges one asynchronous syscall submission: the request is
// placed on a shared-memory queue and serviced outside the enclave without
// a transition (SCONE's exit-less syscall mechanism).
func (e *Enclave) AsyncSyscall() {
	e.stats.AsyncSyscalls.Add(1)
	e.platform.clock.Advance(e.platform.params.AsyncSyscallCost)
}

// pressure returns workingSet/availableEPC for this enclave, where the
// available EPC discounts what other enclaves on the platform keep
// resident. A value <= 1 means the enclave fits.
func (e *Enclave) pressure() float64 {
	params := e.platform.params
	own := e.residentBytes()
	others := e.platform.residentTotal() - own
	avail := params.EPCSize - others
	if avail < params.PageSize {
		avail = params.PageSize
	}
	return float64(own) / float64(avail)
}

// Access charges memory traffic of n bytes with the given access pattern.
// In HW mode, traffic within the EPC pays the MEE bandwidth penalty; once
// the enclave's working set exceeds the available EPC, the excess fraction
// of the traffic additionally pays per-page paging costs — cheap
// sequential page-ins for streaming traffic, expensive thrashing for
// random dirty working sets.
func (e *Enclave) Access(n int64, pattern AccessPattern) {
	if n <= 0 {
		return
	}
	e.stats.BytesAccessed.Add(n)
	params := e.platform.params
	switch e.mode {
	case ModeSIM:
		e.platform.clock.Advance(params.MemTime(float64(n)))
		return
	case ModeHW:
	default:
		return
	}

	// Bandwidth term with MEE penalty.
	d := params.MemTime(float64(n) * params.MEEFactor)

	// Paging term.
	if pr := e.pressure(); pr > 1 {
		excessFrac := 1 - 1/pr // fraction of working set not resident
		faultBytes := float64(n) * excessFrac
		pages := int64(faultBytes / float64(params.PageSize))
		if pages > 0 {
			var perPage time.Duration
			switch pattern {
			case AccessStreaming:
				// Sequential page-ins of read-only data, but each one
				// evicts a victim; evicting a dirty page pays the full
				// EWB path, amplified by pressure as victims are re-
				// faulted.
				dirty := e.dirtyFraction()
				evict := dirty * float64(params.ThrashPageCost) * math.Pow(pr, params.DirtyEvictExponent)
				perPage = params.StreamPageInCost + time.Duration(evict)
			default:
				mult := math.Pow(pr, params.ThrashExponent)
				perPage = time.Duration(float64(params.ThrashPageCost) * mult)
			}
			e.stats.PageFaults.Add(pages)
			d += time.Duration(pages) * perPage
		}
	}
	e.platform.clock.Advance(d)
}

// CryptoOp charges AES-GCM processing of n bytes at AES-NI throughput.
// Shields use this for their transparent encryption work, which the paper
// notes "can reach a throughput of up to 4 GB/s".
func (e *Enclave) CryptoOp(n int64) {
	if n <= 0 {
		return
	}
	e.platform.clock.Advance(e.platform.params.CryptoTime(float64(n)))
}

// Compute charges analytic compute time for the given FLOPs across the
// given number of execution contexts. HW mode pays the HWComputeFactor:
// the memory encryption engine slows last-level-cache misses, which
// reaches even compute-bound kernels.
func (e *Enclave) Compute(flops int64, contexts int) {
	if flops <= 0 {
		return
	}
	e.stats.ComputeFLOPs.Add(flops)
	d := e.platform.params.ComputeTime(float64(flops), contexts)
	if e.mode == ModeHW && e.platform.params.HWComputeFactor > 1 {
		d = time.Duration(float64(d) * e.platform.params.HWComputeFactor)
	}
	e.platform.clock.Advance(d)
}

// CounterIncrement bumps and returns a platform monotonic counter owned
// by this enclave's identity. Used for rollback protection of persistent
// state (Memoir-style).
func (e *Enclave) CounterIncrement(name string) uint64 {
	return e.platform.counterIncrement(e.measurement, name)
}

// CounterRead returns the current value of a platform monotonic counter
// owned by this enclave's identity.
func (e *Enclave) CounterRead(name string) uint64 {
	return e.platform.counterRead(e.measurement, name)
}

// ErrDestroyed reports use of a destroyed enclave.
var ErrDestroyed = fmt.Errorf("sgx: enclave destroyed")

// checkAlive returns ErrDestroyed when the enclave has been destroyed.
func (e *Enclave) checkAlive() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.destroyed {
		return ErrDestroyed
	}
	return nil
}
