package sgx

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// MeasurementSize is the size of an enclave measurement in bytes.
const MeasurementSize = sha256.Size

// Measurement is the MRENCLAVE-equivalent: a SHA-256 digest over the
// enclave image contents and size, i.e. the identity the attestation
// protocol speaks about.
type Measurement [MeasurementSize]byte

// String renders the measurement as lowercase hex, truncated for logs.
func (m Measurement) String() string {
	return hex.EncodeToString(m[:8])
}

// Hex renders the full measurement as lowercase hex.
func (m Measurement) Hex() string { return hex.EncodeToString(m[:]) }

// ParseMeasurement parses a full-length hex measurement.
func ParseMeasurement(s string) (Measurement, error) {
	var m Measurement
	b, err := hex.DecodeString(s)
	if err != nil {
		return m, fmt.Errorf("sgx: parsing measurement: %w", err)
	}
	if len(b) != MeasurementSize {
		return m, fmt.Errorf("sgx: measurement must be %d bytes, got %d", MeasurementSize, len(b))
	}
	copy(m[:], b)
	return m, nil
}

// Image describes an enclave binary image to be loaded. Content is the
// code/data actually measured; Name identifies it in logs; HeapSize is the
// enclave heap reserved at creation (counted against the EPC alongside the
// binary).
type Image struct {
	Name     string
	Content  []byte
	HeapSize int64

	// syntheticSize, when nonzero, overrides len(Content) as the simulated
	// in-enclave footprint of the binary (see SyntheticImage).
	syntheticSize int64
}

// SyntheticImage builds an image whose measured content is deterministic
// but whose simulated binary occupies size bytes of enclave memory without
// allocating them for real. It is used to model the paper's binary
// footprints (TensorFlow 87.4 MB, TensorFlow Lite 1.9 MB, Graphene's
// library OS) without materializing the bytes.
func SyntheticImage(name string, size, heapSize int64) Image {
	h := sha256.New()
	h.Write([]byte(name))
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(size))
	h.Write(sz[:])
	return Image{
		Name:     name,
		Content:  h.Sum(nil), // stands in for the binary bytes
		HeapSize: heapSize,
		// size recorded separately via syntheticSize
	}.withSyntheticSize(size)
}

func (img Image) withSyntheticSize(size int64) Image {
	img.syntheticSize = size
	return img
}

// Size returns the number of bytes the image occupies in enclave memory.
func (img Image) Size() int64 {
	if img.syntheticSize > 0 {
		return img.syntheticSize
	}
	return int64(len(img.Content))
}

// Measure computes the enclave measurement of the image: a digest over the
// image name, contents, declared size and heap size, mirroring how
// EADD/EEXTEND fold page contents and layout into MRENCLAVE.
func (img Image) Measure() Measurement {
	h := sha256.New()
	h.Write([]byte(img.Name))
	h.Write([]byte{0})
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(img.Size()))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(img.HeapSize))
	h.Write(buf[:])
	h.Write(img.Content)
	var m Measurement
	copy(m[:], h.Sum(nil))
	return m
}
