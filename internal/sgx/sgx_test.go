package sgx

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func newTestPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform("test-node", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMeasurementDeterministic(t *testing.T) {
	img := Image{Name: "app", Content: []byte("binary bytes"), HeapSize: 1024}
	if img.Measure() != img.Measure() {
		t.Fatal("measurement not deterministic")
	}
}

func TestMeasurementSensitivity(t *testing.T) {
	base := Image{Name: "app", Content: []byte("binary bytes"), HeapSize: 1024}
	m := base.Measure()

	changedContent := base
	changedContent.Content = []byte("binary bytez")
	if changedContent.Measure() == m {
		t.Fatal("content change not reflected in measurement")
	}

	changedName := base
	changedName.Name = "app2"
	if changedName.Measure() == m {
		t.Fatal("name change not reflected in measurement")
	}

	changedHeap := base
	changedHeap.HeapSize = 2048
	if changedHeap.Measure() == m {
		t.Fatal("heap size change not reflected in measurement")
	}
}

func TestSyntheticImageSizeAndIdentity(t *testing.T) {
	a := SyntheticImage("tensorflow", 87<<20, 1<<20)
	if a.Size() != 87<<20 {
		t.Fatalf("Size() = %d, want %d", a.Size(), 87<<20)
	}
	b := SyntheticImage("tensorflow", 87<<20, 1<<20)
	if a.Measure() != b.Measure() {
		t.Fatal("same synthetic image must measure identically")
	}
	c := SyntheticImage("tensorflow", 88<<20, 1<<20)
	if a.Measure() == c.Measure() {
		t.Fatal("different size must change the measurement")
	}
}

func TestParseMeasurementRoundTrip(t *testing.T) {
	img := Image{Name: "x", Content: []byte("y")}
	m := img.Measure()
	got, err := ParseMeasurement(m.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatal("hex round trip mismatch")
	}
	if _, err := ParseMeasurement("zz"); err == nil {
		t.Fatal("invalid hex accepted")
	}
	if _, err := ParseMeasurement("abcd"); err == nil {
		t.Fatal("short measurement accepted")
	}
}

func TestCreateEnclaveChargesMoreInHW(t *testing.T) {
	img := SyntheticImage("app", 10<<20, 1<<20)

	pHW := newTestPlatform(t)
	if _, err := pHW.CreateEnclave(img, ModeHW); err != nil {
		t.Fatal(err)
	}
	hwCost := pHW.Clock().Now()

	pSIM := newTestPlatform(t)
	if _, err := pSIM.CreateEnclave(img, ModeSIM); err != nil {
		t.Fatal(err)
	}
	simCost := pSIM.Clock().Now()

	if hwCost <= simCost {
		t.Fatalf("HW creation (%v) should cost more than SIM (%v)", hwCost, simCost)
	}
}

func TestCreateEnclaveInvalidMode(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.CreateEnclave(Image{Name: "x"}, Mode(0)); err == nil {
		t.Fatal("invalid mode accepted")
	}
}

func TestTransitionCostOnlyInHW(t *testing.T) {
	p := newTestPlatform(t)
	hw, err := p.CreateEnclave(Image{Name: "hw", Content: []byte("b")}, ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Clock().Now()
	hw.Transition()
	if got := p.Clock().Now() - before; got != p.Params().TransitionCost {
		t.Fatalf("HW transition charged %v, want %v", got, p.Params().TransitionCost)
	}

	sim, err := p.CreateEnclave(Image{Name: "sim", Content: []byte("b")}, ModeSIM)
	if err != nil {
		t.Fatal(err)
	}
	before = p.Clock().Now()
	sim.Transition()
	if got := p.Clock().Now() - before; got != 0 {
		t.Fatalf("SIM transition charged %v, want 0", got)
	}
	if sim.Stats().Transitions != 1 {
		t.Fatal("SIM transition not counted")
	}
}

func TestAccessWithinEPCNoFaults(t *testing.T) {
	p := newTestPlatform(t)
	e, err := p.CreateEnclave(SyntheticImage("small", 1<<20, 1<<20), ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	e.Access(10<<20, AccessRandom)
	if f := e.Stats().PageFaults; f != 0 {
		t.Fatalf("page faults within EPC = %d, want 0", f)
	}
}

func TestAccessOverEPCFaults(t *testing.T) {
	p := newTestPlatform(t)
	e, err := p.CreateEnclave(SyntheticImage("huge", 150<<20, 10<<20), ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	e.Access(20<<20, AccessRandom)
	if f := e.Stats().PageFaults; f == 0 {
		t.Fatal("no page faults despite working set over EPC")
	}
}

func TestStreamingCheaperThanThrashing(t *testing.T) {
	mk := func(pattern AccessPattern) time.Duration {
		p, err := NewPlatform("n", DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		e, err := p.CreateEnclave(SyntheticImage("big", 170<<20, 0), ModeHW)
		if err != nil {
			t.Fatal(err)
		}
		start := p.Clock().Now()
		e.Access(170<<20, pattern)
		return p.Clock().Now() - start
	}
	stream := mk(AccessStreaming)
	thrash := mk(AccessRandom)
	if stream >= thrash {
		t.Fatalf("streaming (%v) should be cheaper than thrashing (%v)", stream, thrash)
	}
	// The gap should be substantial — this is what separates TFLite from
	// full TF in the paper's HW results.
	if thrash < 3*stream {
		t.Fatalf("thrashing (%v) should dominate streaming (%v) by a wide margin", thrash, stream)
	}
}

func TestSIMModeNoEPCCosts(t *testing.T) {
	p := newTestPlatform(t)
	e, err := p.CreateEnclave(SyntheticImage("huge", 300<<20, 0), ModeSIM)
	if err != nil {
		t.Fatal(err)
	}
	e.Access(50<<20, AccessRandom)
	if f := e.Stats().PageFaults; f != 0 {
		t.Fatalf("SIM mode charged %d page faults", f)
	}
}

func TestAllocFreeAdjustsResidency(t *testing.T) {
	p := newTestPlatform(t)
	e, err := p.CreateEnclave(SyntheticImage("app", 1<<20, 0), ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	base := e.ResidentBytes()
	e.Alloc("weights", 40<<20)
	if got := e.ResidentBytes(); got != base+40<<20 {
		t.Fatalf("resident = %d, want %d", got, base+40<<20)
	}
	e.Alloc("weights", 20<<20) // replace
	if got := e.ResidentBytes(); got != base+20<<20 {
		t.Fatalf("after replace: resident = %d, want %d", got, base+20<<20)
	}
	e.Free("weights")
	if got := e.ResidentBytes(); got != base {
		t.Fatalf("after free: resident = %d, want %d", got, base)
	}
	e.Free("weights") // double free is a no-op
	if got := e.ResidentBytes(); got != base {
		t.Fatalf("after double free: resident = %d, want %d", got, base)
	}
}

func TestPlatformSharedEPCPressure(t *testing.T) {
	p := newTestPlatform(t)
	// First enclave occupies most of the EPC.
	big, err := p.CreateEnclave(SyntheticImage("big", 80<<20, 0), ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	_ = big
	// Second enclave alone would fit, but the platform EPC is shared.
	small, err := p.CreateEnclave(SyntheticImage("small", 30<<20, 0), ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	small.Access(10<<20, AccessRandom)
	if f := small.Stats().PageFaults; f == 0 {
		t.Fatal("expected paging pressure from sharing the EPC with another enclave")
	}
}

func TestDestroyReleasesEPC(t *testing.T) {
	p := newTestPlatform(t)
	e, err := p.CreateEnclave(SyntheticImage("app", 50<<20, 0), ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.residentTotal(); got != 50<<20 {
		t.Fatalf("resident = %d, want %d", got, 50<<20)
	}
	e.Destroy()
	if got := p.residentTotal(); got != 0 {
		t.Fatalf("after destroy: resident = %d, want 0", got)
	}
	e.Destroy() // idempotent
	if _, err := e.CreateReport(nil); err == nil {
		t.Fatal("report from destroyed enclave accepted")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p := newTestPlatform(t)
	img := Image{Name: "app", Content: []byte("bin")}
	e1, err := p.CreateEnclave(img, ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("sealed secret")
	ct, err := e1.Seal(pt, []byte("ctx"))
	if err != nil {
		t.Fatal(err)
	}

	// Same measurement on the same platform can unseal.
	e2, err := p.CreateEnclave(img, ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.Unseal(ct, []byte("ctx"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("unseal mismatch")
	}

	// Different measurement cannot.
	other, err := p.CreateEnclave(Image{Name: "evil", Content: []byte("bin")}, ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Unseal(ct, []byte("ctx")); err == nil {
		t.Fatal("different enclave unsealed data")
	}

	// Different platform cannot.
	p2 := newTestPlatform(t)
	e3, err := p2.CreateEnclave(img, ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e3.Unseal(ct, []byte("ctx")); err == nil {
		t.Fatal("different platform unsealed data")
	}
}

func TestQuoteVerify(t *testing.T) {
	p := newTestPlatform(t)
	e, err := p.CreateEnclave(Image{Name: "app", Content: []byte("bin")}, ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.GetQuote([]byte("nonce"), QEVendorDCAP)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(q, p.AttestationKey()); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	if q.Report.Measurement != e.Measurement() {
		t.Fatal("quote carries wrong measurement")
	}

	// Tampered measurement must fail verification.
	forged := q
	forged.Report.Measurement[0] ^= 0xff
	if err := VerifyQuote(forged, p.AttestationKey()); err == nil {
		t.Fatal("forged quote accepted")
	}

	// Tampered report data must fail verification.
	forged = q
	forged.Report.ReportData[0] ^= 0xff
	if err := VerifyQuote(forged, p.AttestationKey()); err == nil {
		t.Fatal("forged report data accepted")
	}

	// Wrong platform key must fail.
	p2 := newTestPlatform(t)
	if err := VerifyQuote(q, p2.AttestationKey()); err == nil {
		t.Fatal("quote verified under wrong platform key")
	}
}

func TestQuoteRejectsBadInputs(t *testing.T) {
	p := newTestPlatform(t)
	e, err := p.CreateEnclave(Image{Name: "app", Content: []byte("bin")}, ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.GetQuote(make([]byte, ReportDataSize+1), QEVendorDCAP); err == nil {
		t.Fatal("oversized report data accepted")
	}
	if _, err := e.GetQuote(nil, "bogus"); err == nil {
		t.Fatal("unknown vendor accepted")
	}
	q, _ := e.GetQuote(nil, QEVendorEPID)
	q.Signature = nil
	if err := VerifyQuote(q, p.AttestationKey()); err == nil {
		t.Fatal("empty signature accepted")
	}
	q2, _ := e.GetQuote(nil, QEVendorEPID)
	q2.QEVendor = "bogus"
	if err := VerifyQuote(q2, p.AttestationKey()); err == nil {
		t.Fatal("unknown vendor verified")
	}
}

func TestComputeTimeScalesWithCores(t *testing.T) {
	params := DefaultParams()
	one := params.ComputeTime(1e9, 1)
	four := params.ComputeTime(1e9, 4)
	if four >= one {
		t.Fatalf("4 cores (%v) should beat 1 core (%v)", four, one)
	}
	if got, want := one/four, time.Duration(4); got != want {
		t.Fatalf("scaling 1->4 cores = %v, want %vx", got, want)
	}
	// Hyper-threads help less than physical cores.
	eight := params.ComputeTime(1e9, 8)
	if eight >= four {
		t.Fatal("8 threads should still beat 4 cores")
	}
	if ratio := float64(four) / float64(eight); ratio > 1.9 {
		t.Fatalf("hyper-thread speedup %0.2f too close to linear", ratio)
	}
}

func TestEnclaveComputeChargesClock(t *testing.T) {
	p := newTestPlatform(t)
	e, err := p.CreateEnclave(Image{Name: "a", Content: []byte("b")}, ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Clock().Now()
	e.Compute(20e9, 1) // 20 GFLOPs at 20 GFLOP/s = 1 s, times the HW factor
	got := p.Clock().Now() - before
	want := time.Duration(float64(time.Second) * p.Params().HWComputeFactor)
	if got != want {
		t.Fatalf("Compute charged %v, want %v (HW factor applied)", got, want)
	}

	sim, err := p.CreateEnclave(Image{Name: "s", Content: []byte("b")}, ModeSIM)
	if err != nil {
		t.Fatal(err)
	}
	before = p.Clock().Now()
	sim.Compute(20e9, 1)
	if got := p.Clock().Now() - before; got != time.Second {
		t.Fatalf("SIM Compute charged %v, want 1s (no HW factor)", got)
	}
}

func TestDirtyEvictionsMakeStreamingExpensive(t *testing.T) {
	// Two enclaves with identical oversized working sets: one streams
	// read-only weights over a small dirty set (SCONE+TFLite), the other
	// carries a large writable resident segment (Graphene's libOS). The
	// dirty one must pay more per streamed page.
	run := func(dirtyExtra bool) time.Duration {
		p := newTestPlatform(t)
		e, err := p.CreateEnclave(SyntheticImage("app", 2<<20, 2<<20), ModeHW)
		if err != nil {
			t.Fatal(err)
		}
		if dirtyExtra {
			e.Alloc("libos", 45<<20)
			e.AllocReadOnly("weights", 120<<20)
		} else {
			e.AllocReadOnly("weights", 165<<20)
		}
		start := p.Clock().Now()
		e.Access(120<<20, AccessStreaming)
		return p.Clock().Now() - start
	}
	clean := run(false)
	dirty := run(true)
	if dirty <= clean {
		t.Fatalf("dirty-resident streaming (%v) should cost more than clean (%v)", dirty, clean)
	}
}

func TestAccessPropertyMonotonicInSize(t *testing.T) {
	p := newTestPlatform(t)
	e, err := p.CreateEnclave(SyntheticImage("big", 120<<20, 0), ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint32) bool {
		small, big := int64(a%(1<<20))+1, int64(b%(1<<20))+1
		if small > big {
			small, big = big, small
		}
		c1 := p.Clock().Start()
		e.Access(small, AccessRandom)
		d1 := c1.Stop()
		c2 := p.Clock().Start()
		e.Access(big, AccessRandom)
		d2 := c2.Stop()
		return d1 <= d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if ModeHW.String() != "HW" || ModeSIM.String() != "SIM" {
		t.Fatal("mode names changed; figures depend on them")
	}
	if Mode(0).String() != "invalid" {
		t.Fatal("zero mode should render as invalid")
	}
}

func TestEnclaveCreationOvercommitLimit(t *testing.T) {
	p := newTestPlatform(t)
	// Fill the platform beyond the overcommit allowance.
	huge := SyntheticImage("huge", p.Params().EPCSize*maxOvercommit, 0)
	if _, err := p.CreateEnclave(huge, ModeHW); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateEnclave(SyntheticImage("one-more", 1<<20, 0), ModeHW); err == nil {
		t.Fatal("enclave creation beyond overcommit limit accepted")
	}
}

func TestMonotonicCounters(t *testing.T) {
	platform, err := NewPlatform("ctr-node", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := platform.CreateEnclave(SyntheticImage("app", 1<<20, 1<<20), ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Destroy()

	if got := enclave.CounterRead("epoch"); got != 0 {
		t.Fatalf("fresh counter = %d", got)
	}
	for want := uint64(1); want <= 3; want++ {
		if got := enclave.CounterIncrement("epoch"); got != want {
			t.Fatalf("increment -> %d, want %d", got, want)
		}
	}
	if got := enclave.CounterRead("epoch"); got != 3 {
		t.Fatalf("read = %d, want 3", got)
	}
	if got := enclave.CounterRead("other"); got != 0 {
		t.Fatalf("independent counter = %d", got)
	}

	// Monotonic counters are a *platform* resource: they survive the
	// enclave (that is what makes them useful against rollback). A new
	// enclave with the same measurement sees the advanced value.
	enclave.Destroy()
	again, err := platform.CreateEnclave(SyntheticImage("app", 1<<20, 1<<20), ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Destroy()
	if got := again.CounterRead("epoch"); got != 3 {
		t.Fatalf("counter after restart = %d, want 3 (must survive the enclave)", got)
	}
}

func TestEnclaveAccessors(t *testing.T) {
	platform, err := NewPlatform("acc-node", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	img := SyntheticImage("app", 1<<20, 1<<20)
	enclave, err := platform.CreateEnclave(img, ModeSIM)
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Destroy()
	if enclave.Mode() != ModeSIM {
		t.Fatalf("mode = %v", enclave.Mode())
	}
	if enclave.Platform() != platform {
		t.Fatal("platform accessor mismatch")
	}
	if enclave.Clock() != platform.Clock() {
		t.Fatal("clock accessor mismatch")
	}
	if enclave.Image().Name != img.Name {
		t.Fatal("image accessor mismatch")
	}
	if platform.Name() != "acc-node" {
		t.Fatalf("platform name %q", platform.Name())
	}
	if enclave.Measurement().String() == "" {
		t.Fatal("empty measurement string")
	}
}

func TestAsyncSyscallAndCryptoOpCharge(t *testing.T) {
	params := DefaultParams()
	platform, err := NewPlatform("chg-node", params)
	if err != nil {
		t.Fatal(err)
	}
	enclave, err := platform.CreateEnclave(SyntheticImage("app", 1<<20, 1<<20), ModeHW)
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Destroy()

	base := platform.Clock().Now()
	enclave.AsyncSyscall()
	asyncCost := platform.Clock().Now() - base
	if asyncCost != params.AsyncSyscallCost {
		t.Fatalf("async syscall charged %v, want %v", asyncCost, params.AsyncSyscallCost)
	}
	if got := enclave.Stats().AsyncSyscalls; got != 1 {
		t.Fatalf("async syscall count = %d", got)
	}
	// An exit-less syscall must be far cheaper than a transition.
	if asyncCost >= params.TransitionCost {
		t.Fatalf("async cost %v not below transition cost %v", asyncCost, params.TransitionCost)
	}

	base = platform.Clock().Now()
	enclave.CryptoOp(int64(params.AESThroughput)) // one second of AES-NI
	cryptoCost := platform.Clock().Now() - base
	if cryptoCost < 900*time.Millisecond || cryptoCost > 1100*time.Millisecond {
		t.Fatalf("one AES-second charged %v", cryptoCost)
	}
}

func TestTimeAtThroughput(t *testing.T) {
	if got := TimeAtThroughput(0, 1e9); got != 0 {
		t.Fatalf("zero bytes charged %v", got)
	}
	if got := TimeAtThroughput(2e9, 1e9); got < 1900*time.Millisecond || got > 2100*time.Millisecond {
		t.Fatalf("2 GB at 1 GB/s = %v", got)
	}
	if got := TimeAtThroughput(100, 0); got != 0 {
		t.Fatalf("zero throughput charged %v (must not divide by zero)", got)
	}
}
