package sgx

import (
	"crypto/ecdsa"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/securetf/securetf/internal/seccrypto"
	"github.com/securetf/securetf/internal/vtime"
)

// Platform models one SGX-capable machine: a shared EPC, a platform
// attestation key (the quoting enclave's key, fused per CPU in real SGX),
// and a root sealing secret. All enclaves created on a platform share its
// EPC and virtual clock.
type Platform struct {
	name   string
	params Params
	clock  *vtime.Clock

	quoteKey   *seccrypto.SigningKey
	sealSecret [32]byte

	mu       sync.Mutex
	enclaves map[uint64]*Enclave
	nextID   uint64
	resident int64 // total enclave-resident bytes on this platform

	counters map[counterKey]uint64
}

// counterKey scopes a monotonic counter to an enclave identity, mirroring
// SGX monotonic counters that survive enclave restarts on a platform.
type counterKey struct {
	owner Measurement
	name  string
}

// ErrEPCExhausted reports that an enclave creation would exceed total EPC
// plus the swap allowance. Real SGX can overcommit via paging, so creation
// only fails beyond a generous multiple of the EPC.
var ErrEPCExhausted = errors.New("sgx: enclave memory limit exceeded")

// maxOvercommit is how many times the EPC may be oversubscribed before
// enclave creation fails outright.
const maxOvercommit = 64

// NewPlatform creates a platform with the given name and parameters,
// generating fresh platform keys.
func NewPlatform(name string, params Params) (*Platform, error) {
	qk, err := seccrypto.NewSigningKey()
	if err != nil {
		return nil, fmt.Errorf("sgx: creating platform %q: %w", name, err)
	}
	p := &Platform{
		name:     name,
		params:   params,
		clock:    &vtime.Clock{},
		quoteKey: qk,
		enclaves: make(map[uint64]*Enclave),
		counters: make(map[counterKey]uint64),
	}
	if _, err := io.ReadFull(rand.Reader, p.sealSecret[:]); err != nil {
		return nil, fmt.Errorf("sgx: creating platform %q: %w", name, err)
	}
	return p, nil
}

// Name returns the platform name.
func (p *Platform) Name() string { return p.name }

// Params returns the platform's cost-model parameters.
func (p *Platform) Params() Params { return p.params }

// Clock returns the platform's virtual clock.
func (p *Platform) Clock() *vtime.Clock { return p.clock }

// AttestationKey returns the public half of the platform quoting key.
// Verifiers (CAS, IAS) obtain this out of band, standing in for Intel's
// provisioning infrastructure.
func (p *Platform) AttestationKey() *ecdsa.PublicKey { return p.quoteKey.Public() }

// CreateEnclave loads an image into a new enclave, charging the
// measurement/creation cost. Mode selects HW (full cost model) or SIM.
func (p *Platform) CreateEnclave(img Image, mode Mode) (*Enclave, error) {
	if mode != ModeHW && mode != ModeSIM {
		return nil, fmt.Errorf("sgx: invalid mode %d", int(mode))
	}
	footprint := img.Size() + img.HeapSize
	p.mu.Lock()
	if mode == ModeHW && p.resident+footprint > p.params.EPCSize*maxOvercommit {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %d bytes requested, %d resident", ErrEPCExhausted, footprint, p.resident)
	}
	p.nextID++
	id := p.nextID
	e := &Enclave{
		id:          id,
		platform:    p,
		mode:        mode,
		image:       img,
		measurement: img.Measure(),
		resident:    footprint,
	}
	p.enclaves[id] = e
	if mode == ModeHW {
		p.resident += footprint
	}
	p.mu.Unlock()

	// Creation cost: EADD/EEXTEND measure every page, plus EINIT. In SIM
	// mode loading is an ordinary mmap and costs almost nothing.
	if mode == ModeHW {
		pages := (footprint + p.params.PageSize - 1) / p.params.PageSize
		p.clock.Advance(p.params.EnclaveCreateCost + time.Duration(pages)*perPageAddCost)
	} else {
		p.clock.Advance(p.params.EnclaveCreateCost / 20)
	}
	return e, nil
}

// perPageAddCost approximates EADD+EEXTEND per 4 KiB page.
const perPageAddCost = 2500 * time.Nanosecond

// destroyEnclave releases an enclave's EPC accounting.
func (p *Platform) destroyEnclave(e *Enclave) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.enclaves[e.id]; !ok {
		return
	}
	delete(p.enclaves, e.id)
	if e.mode == ModeHW {
		p.resident -= e.residentBytes()
	}
}

// residentTotal returns the total HW-mode resident bytes on the platform.
func (p *Platform) residentTotal() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resident
}

// adjustResident applies a delta to the platform-wide resident count for a
// HW enclave growing or shrinking its heap.
func (p *Platform) adjustResident(delta int64) {
	p.mu.Lock()
	p.resident += delta
	p.mu.Unlock()
}

// sealKeyFor derives the per-measurement sealing key, mirroring
// EGETKEY(SEAL) policy MRENCLAVE: same platform + same enclave identity
// derive the same key; anything else derives garbage.
func (p *Platform) sealKeyFor(m Measurement) seccrypto.Key {
	return seccrypto.HKDF(append(p.sealSecret[:], m[:]...), "sgx-seal-v1", p.name)
}

// counterIncrement bumps and returns a monotonic counter owned by the
// given enclave identity. Counters survive enclave restarts but not
// platform replacement, like SGX monotonic counters.
func (p *Platform) counterIncrement(owner Measurement, name string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := counterKey{owner: owner, name: name}
	p.counters[k]++
	return p.counters[k]
}

// counterRead returns the current value of a monotonic counter.
func (p *Platform) counterRead(owner Measurement, name string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters[counterKey{owner: owner, name: name}]
}

// signQuote signs report bytes with the platform quoting key.
func (p *Platform) signQuote(reportBytes []byte) ([]byte, error) {
	p.clock.Advance(p.params.QuoteSignCost)
	return p.quoteKey.Sign(reportBytes)
}
