package sgx

import (
	"bytes"
	"crypto/ecdsa"
	"encoding/binary"
	"errors"
	"fmt"
)

// ReportDataSize is the size of the user-supplied report data field
// (64 bytes in real SGX reports; typically a hash binding the quote to a
// TLS channel or nonce).
const ReportDataSize = 64

// Report is the EREPORT-equivalent structure: the enclave's identity plus
// caller-chosen report data, produced inside the enclave.
type Report struct {
	Measurement Measurement
	Mode        Mode // HW or SIM; verifiers may reject SIM quotes
	Platform    string
	ReportData  [ReportDataSize]byte
}

// Quote is a signed report: the platform quoting key vouches that the
// report was produced by an enclave with the stated measurement on this
// platform. QEVendor distinguishes the DCAP-style local quoting used with
// CAS from the EPID-style quoting verified by the Intel Attestation
// Service baseline.
type Quote struct {
	Report    Report
	QEVendor  string // "dcap" or "epid"
	Signature []byte
}

// Quote vendor identifiers.
const (
	QEVendorDCAP = "dcap"
	QEVendorEPID = "epid"
)

// Attestation errors.
var (
	ErrBadQuoteSignature = errors.New("sgx: quote signature verification failed")
	ErrQuoteMalformed    = errors.New("sgx: malformed quote")
)

// CreateReport produces a report with the given report data, charging the
// EREPORT cost.
func (e *Enclave) CreateReport(reportData []byte) (Report, error) {
	if err := e.checkAlive(); err != nil {
		return Report{}, err
	}
	if len(reportData) > ReportDataSize {
		return Report{}, fmt.Errorf("sgx: report data must be at most %d bytes, got %d", ReportDataSize, len(reportData))
	}
	e.platform.clock.Advance(e.platform.params.ReportCost)
	r := Report{
		Measurement: e.measurement,
		Mode:        e.mode,
		Platform:    e.platform.name,
	}
	copy(r.ReportData[:], reportData)
	return r, nil
}

// GetQuote turns a report into a quote signed by the platform quoting key.
// vendor selects the quoting infrastructure being modelled.
func (e *Enclave) GetQuote(reportData []byte, vendor string) (Quote, error) {
	r, err := e.CreateReport(reportData)
	if err != nil {
		return Quote{}, err
	}
	if vendor != QEVendorDCAP && vendor != QEVendorEPID {
		return Quote{}, fmt.Errorf("sgx: unknown quoting vendor %q", vendor)
	}
	// Quote generation requires a local report exchange with the quoting
	// enclave: one transition each way.
	e.Transition()
	sig, err := e.platform.signQuote(encodeReport(r, vendor))
	if err != nil {
		return Quote{}, fmt.Errorf("sgx: signing quote: %w", err)
	}
	return Quote{Report: r, QEVendor: vendor, Signature: sig}, nil
}

// VerifyQuote checks a quote against the platform attestation public key.
// It does not charge verification cost; verifiers (CAS, IAS) charge their
// own costs, which is exactly the difference Figure 4 measures.
func VerifyQuote(q Quote, platformKey *ecdsa.PublicKey) error {
	if q.QEVendor != QEVendorDCAP && q.QEVendor != QEVendorEPID {
		return fmt.Errorf("%w: unknown vendor %q", ErrQuoteMalformed, q.QEVendor)
	}
	if len(q.Signature) == 0 {
		return fmt.Errorf("%w: empty signature", ErrQuoteMalformed)
	}
	if !verifySig(platformKey, encodeReport(q.Report, q.QEVendor), q.Signature) {
		return ErrBadQuoteSignature
	}
	return nil
}

// encodeReport serializes a report deterministically for signing.
func encodeReport(r Report, vendor string) []byte {
	var buf bytes.Buffer
	buf.WriteString("securetf-quote-v1\x00")
	buf.WriteString(vendor)
	buf.WriteByte(0)
	buf.Write(r.Measurement[:])
	var mode [4]byte
	binary.LittleEndian.PutUint32(mode[:], uint32(r.Mode))
	buf.Write(mode[:])
	buf.WriteString(r.Platform)
	buf.WriteByte(0)
	buf.Write(r.ReportData[:])
	return buf.Bytes()
}
