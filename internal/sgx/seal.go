package sgx

import (
	"crypto/ecdsa"
	"fmt"

	"github.com/securetf/securetf/internal/seccrypto"
)

// Seal encrypts data under the enclave's sealing key (EGETKEY policy
// MRENCLAVE): only an enclave with the same measurement on the same
// platform can unseal it. The aad binds context (e.g. a file path).
func (e *Enclave) Seal(plaintext, aad []byte) ([]byte, error) {
	if err := e.checkAlive(); err != nil {
		return nil, err
	}
	key := e.platform.sealKeyFor(e.measurement)
	e.platform.clock.Advance(e.platform.params.CryptoTime(float64(len(plaintext))))
	ct, err := seccrypto.Seal(key, plaintext, aad)
	if err != nil {
		return nil, fmt.Errorf("sgx: sealing: %w", err)
	}
	return ct, nil
}

// Unseal decrypts data sealed by an enclave with the same measurement on
// the same platform.
func (e *Enclave) Unseal(ciphertext, aad []byte) ([]byte, error) {
	if err := e.checkAlive(); err != nil {
		return nil, err
	}
	key := e.platform.sealKeyFor(e.measurement)
	e.platform.clock.Advance(e.platform.params.CryptoTime(float64(len(ciphertext))))
	pt, err := seccrypto.Open(key, ciphertext, aad)
	if err != nil {
		return nil, fmt.Errorf("sgx: unsealing: %w", err)
	}
	return pt, nil
}

func verifySig(pub *ecdsa.PublicKey, msg, sig []byte) bool {
	return seccrypto.Verify(pub, msg, sig)
}
