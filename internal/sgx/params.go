// Package sgx simulates the Intel SGX trusted execution environment that
// secureTF (Middleware 2020) builds on.
//
// The simulator is functional where functionality matters for security
// protocols — measurement, sealed storage, report/quote generation and
// verification are real cryptographic operations — and analytic where the
// paper's evaluation depends on hardware behaviour: EPC capacity, paging,
// the memory encryption engine (MEE) and enclave transitions are modelled
// as virtual-time charges against a vtime.Clock.
//
// The calibration constants in Params come from the paper itself (94 MB
// usable EPC, 4 GB/s AES-NI throughput) and from published SGX
// microbenchmark literature (transition and paging costs).
package sgx

import "time"

// Mode selects how an enclave charges costs.
type Mode int

const (
	// ModeHW models real SGX hardware: EPC capacity limits, paging costs,
	// MEE bandwidth reduction, and enclave-transition costs all apply.
	ModeHW Mode = iota + 1
	// ModeSIM models SCONE's simulation mode: the runtime behaves
	// identically (syscall interposition, scheduling) but no SGX hardware
	// is engaged, so EPC/MEE/transition costs do not apply.
	ModeSIM
)

// String returns the conventional name used in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ModeHW:
		return "HW"
	case ModeSIM:
		return "SIM"
	default:
		return "invalid"
	}
}

// AccessPattern describes how a memory region is touched, which determines
// the cost of EPC paging once the working set exceeds the EPC.
type AccessPattern int

const (
	// AccessStreaming marks sequential, read-only traffic (e.g. TensorFlow
	// Lite streaming over model weights). Evicted pages are clean, so
	// page-in is a cheap sequential ELDU with no write-back.
	AccessStreaming AccessPattern = iota + 1
	// AccessRandom marks read-write traffic with reuse (e.g. the full
	// TensorFlow runtime's graph state and training arenas). Faults pay the
	// full EWB + ELDU + TLB-shootdown cost and thrash super-linearly once
	// the working set exceeds the EPC.
	AccessRandom
)

// Params holds the cost-model calibration. The zero value is not valid;
// use DefaultParams.
type Params struct {
	// EPCSize is the usable Enclave Page Cache size in bytes. The paper
	// repeatedly cites ~94 MB for SGXv1.
	EPCSize int64
	// PageSize is the EPC page size in bytes (4 KiB on SGXv1).
	PageSize int64

	// TransitionCost is the cost of one enclave round trip
	// (EENTER+EEXIT or AEX). Literature reports ~8,000 cycles; at 3.9 GHz
	// that is ~2 µs.
	TransitionCost time.Duration
	// AsyncSyscallCost is the in-enclave cost of submitting a request to
	// the asynchronous syscall queue (SCONE §3.3): a shared-memory
	// enqueue, no transition.
	AsyncSyscallCost time.Duration
	// NativeSyscallCost is the cost of an ordinary user/kernel syscall
	// crossing outside any enclave, used by the native baselines.
	NativeSyscallCost time.Duration

	// StreamPageInCost is the per-page cost for clean sequential page-in.
	StreamPageInCost time.Duration
	// ThrashPageCost is the per-page cost of a full evict+load cycle for
	// dirty, randomly accessed pages.
	ThrashPageCost time.Duration
	// ThrashExponent controls super-linear degradation: the per-page cost
	// is multiplied by (workingSet/EPC)^ThrashExponent once the working
	// set exceeds the EPC.
	ThrashExponent float64

	// MEEFactor is the slowdown of enclave memory bandwidth caused by the
	// memory encryption engine on cache misses.
	MEEFactor float64
	// HWComputeFactor is the slowdown of in-enclave computation in HW
	// mode: MEE latency on LLC misses and TLB pressure reach compute-
	// bound code too. Applied by Enclave.Compute.
	HWComputeFactor float64
	// DirtyEvictExponent governs the extra cost of streaming page-ins
	// that must evict dirty pages: per-page cost gains
	// dirtyFraction · ThrashPageCost · pressure^DirtyEvictExponent.
	// A runtime with a large writable resident set (Graphene's library
	// OS) degrades faster past the EPC than one streaming read-only
	// weights over a small dirty set (SCONE + TensorFlow Lite).
	DirtyEvictExponent float64
	// SIMCopyThroughput is the effective enclave-boundary copy
	// throughput of SCONE's simulation mode. The paper (§5.4) attributes
	// most of the SIM-mode training overhead to "a scheduling issue in
	// SCONE" on the syscall copy path, later fixed; this reproduces the
	// behaviour of the evaluated version.
	SIMCopyThroughput float64
	// MemBandwidth is untrusted DRAM bandwidth in bytes/second used for
	// charging memory-bound work.
	MemBandwidth float64

	// CoreFLOPS is per-core sustained floating point throughput
	// (FLOPs/second) used to charge analytic compute time.
	CoreFLOPS float64
	// HyperThreadEff is the marginal efficiency of a hyper-thread
	// relative to a physical core (the paper's machines have 4 physical
	// cores and 8 hyper-threads).
	HyperThreadEff float64
	// PhysicalCores is the number of physical cores per node.
	PhysicalCores int

	// AESThroughput is AES-GCM throughput in bytes/second with AES-NI.
	// The paper cites "up to 4 GB/s" for the file-system shield.
	AESThroughput float64

	// LANRTT is the round-trip time inside the cluster (1 Gb/s switched
	// network in the paper's setup).
	LANRTT time.Duration
	// WANRTT is the round-trip time to a remote wide-area service such as
	// the Intel Attestation Service.
	WANRTT time.Duration
	// WireBandwidth is the cluster network bandwidth in bytes/second
	// (1 Gb/s in the paper's setup).
	WireBandwidth float64
	// TLSHandshakeCost is the CPU cost of a TLS 1.3 handshake (key
	// exchange + certificate verification), excluding network RTTs.
	TLSHandshakeCost time.Duration
	// NetShieldThroughput is the effective TLS record processing
	// throughput of the network shield. It is far below raw AES-NI
	// because records are small and every byte is copied across the
	// enclave boundary twice.
	NetShieldThroughput float64
	// NetShieldRecordCost is the fixed per-record cost of the network
	// shield.
	NetShieldRecordCost time.Duration

	// EnclaveCreateCost is the one-time cost of building an enclave:
	// EADD/EEXTEND over the binary plus EINIT. Charged per byte of image
	// plus a constant.
	EnclaveCreateCost    time.Duration
	EnclaveCreatePerByte time.Duration
	ReportCost           time.Duration // EREPORT
	QuoteSignCost        time.Duration // quoting enclave signature
	QuoteVerifyCostLocal time.Duration // DCAP-style local verification (CAS)
	// QuoteVerifyCostIntel is Intel-side EPID verification processing;
	// together with one WANRTT the "wait confirmation" leg comes to the
	// ~280 ms the paper reports for IAS.
	QuoteVerifyCostIntel time.Duration
	SealCostPerByte      time.Duration
	// AttestInitCost is the client-side setup cost of an attestation
	// round: ephemeral key generation, socket setup and the TLS session
	// to the verifier. Identical for the CAS and IAS flows — the flows
	// diverge only after initialization (Figure 4).
	AttestInitCost time.Duration
}

// DefaultParams returns the calibration used throughout the reproduction.
func DefaultParams() Params {
	return Params{
		EPCSize:  94 << 20,
		PageSize: 4096,

		TransitionCost:    2100 * time.Nanosecond,
		AsyncSyscallCost:  300 * time.Nanosecond,
		NativeSyscallCost: 900 * time.Nanosecond,

		StreamPageInCost: 7 * time.Microsecond,
		ThrashPageCost:   40 * time.Microsecond,
		ThrashExponent:   3.0,

		MEEFactor:          2.0,
		HWComputeFactor:    1.12,
		DirtyEvictExponent: 1.5,
		SIMCopyThroughput:  100e6,
		MemBandwidth:       12e9,

		CoreFLOPS:      20e9,
		HyperThreadEff: 0.55,
		PhysicalCores:  4,

		AESThroughput: 4e9,

		LANRTT:              200 * time.Microsecond,
		WANRTT:              140 * time.Millisecond,
		WireBandwidth:       125e6, // 1 Gb/s
		TLSHandshakeCost:    1200 * time.Microsecond,
		NetShieldThroughput: 80e6,
		NetShieldRecordCost: 2 * time.Microsecond,

		EnclaveCreateCost:    1200 * time.Microsecond,
		EnclaveCreatePerByte: time.Duration(0), // folded into per-page add below
		ReportCost:           25 * time.Microsecond,
		QuoteSignCost:        160 * time.Microsecond,
		QuoteVerifyCostLocal: 800 * time.Microsecond,
		QuoteVerifyCostIntel: 140 * time.Millisecond,
		SealCostPerByte:      time.Duration(0),
		AttestInitCost:       15 * time.Millisecond,
	}
}

// ComputeTime converts a FLOP count into virtual time on n parallel
// execution contexts, accounting for hyper-threading beyond the physical
// core count.
func (p Params) ComputeTime(flops float64, contexts int) time.Duration {
	if flops <= 0 {
		return 0
	}
	if contexts < 1 {
		contexts = 1
	}
	eff := float64(contexts)
	if contexts > p.PhysicalCores {
		eff = float64(p.PhysicalCores) + float64(contexts-p.PhysicalCores)*p.HyperThreadEff
	}
	sec := flops / (p.CoreFLOPS * eff)
	return time.Duration(sec * float64(time.Second))
}

// MemTime converts a byte count of memory traffic into virtual time at
// untrusted DRAM bandwidth.
func (p Params) MemTime(bytes float64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(bytes / p.MemBandwidth * float64(time.Second))
}

// CryptoTime converts a byte count into AES-GCM processing time.
func (p Params) CryptoTime(bytes float64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(bytes / p.AESThroughput * float64(time.Second))
}

// TimeAtThroughput converts a byte count into time at an arbitrary
// throughput in bytes/second.
func TimeAtThroughput(bytes, bytesPerSecond float64) time.Duration {
	if bytes <= 0 || bytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(bytes / bytesPerSecond * float64(time.Second))
}
