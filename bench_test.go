// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), plus ablations over the design choices DESIGN.md
// calls out. Each BenchmarkFigureN op runs the complete corresponding
// experiment at a reduced size (cmd/securetf-bench runs paper-scale);
// key shape ratios are attached with b.ReportMetric so a bench run
// doubles as a reproduction check.
//
// Run all with:
//
//	go test -bench=. -benchmem
package securetf_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/securetf/securetf/internal/experiments"
	"github.com/securetf/securetf/internal/sgx"

	securetf "github.com/securetf/securetf"
)

// benchConfig is the reduced experiment size used by every figure bench.
func benchConfig() experiments.Config {
	return experiments.Config{Runs: 2, Images: 16, Steps: 4, BatchSize: 50}
}

// BenchmarkFigure4Attestation regenerates Figure 4: attestation and key
// transfer latency, IAS versus CAS. Metric cas-speedup-x is the paper's
// headline ~19×.
func BenchmarkFigure4Attestation(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(rows[0].Total()) / float64(rows[1].Total())
	}
	b.ReportMetric(speedup, "cas-speedup-x")
}

// BenchmarkFigure5Classification regenerates Figure 5: single-thread
// classification latency across the five runtimes and three model
// sizes. Metrics report the two headline ratios: Sim/native overhead and
// the HW advantage over Graphene at the largest (EPC-exceeding) model.
func BenchmarkFigure5Classification(b *testing.B) {
	var simOverhead, grapheneRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		byKey := make(map[string]time.Duration, len(rows))
		var largest string
		var largestBytes int64
		for _, r := range rows {
			byKey[r.System+"/"+r.Model] = r.Latency
			if r.ModelBytes > largestBytes {
				largestBytes, largest = r.ModelBytes, r.Model
			}
		}
		simOverhead = float64(byKey["Sim/"+largest]) / float64(byKey["Native musl/"+largest])
		grapheneRatio = float64(byKey["Graphene/"+largest]) / float64(byKey["HW/"+largest])
	}
	b.ReportMetric(simOverhead, "sim-vs-native-x")
	b.ReportMetric(grapheneRatio, "graphene-vs-hw-x")
}

// BenchmarkFigure6FSShield regenerates Figure 6: the file-system shield's
// effect on classification latency. Metric fspf-overhead-pct is the
// paper's ≤ ~1% claim.
func BenchmarkFigure6FSShield(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		byKey := make(map[string]time.Duration, len(rows))
		for _, r := range rows {
			byKey[r.System+"/"+r.Model] = r.Latency
		}
		var worst float64
		for key, lat := range byKey {
			if !strings.HasPrefix(key, "HW w/ FSPF/") {
				continue
			}
			base := byKey["HW/"+strings.TrimPrefix(key, "HW w/ FSPF/")]
			if pct := 100 * (float64(lat)/float64(base) - 1); pct > worst {
				worst = pct
			}
		}
		overhead = worst
	}
	b.ReportMetric(overhead, "fspf-overhead-pct")
}

// BenchmarkFigure7Scalability regenerates Figure 7: scale-up over cores
// and scale-out over nodes. Metrics report the paper's two shapes: HW
// scaling collapses from 4 to 8 cores (EPC pressure), while 3-node
// scale-out is near-linear.
func BenchmarkFigure7Scalability(b *testing.B) {
	var hw8over4, scaleOut float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		get := func(mode string, cores, nodes int) time.Duration {
			for _, r := range rows {
				if r.Mode == mode && r.System == "HW" && r.Cores == cores && r.Nodes == nodes {
					return r.Latency
				}
			}
			b.Fatalf("missing row %s/HW/%dc/%dn", mode, cores, nodes)
			return 0
		}
		upRows := rows[:0:0]
		for _, r := range rows {
			if r.Mode == "scale-up" && r.System == "HW" {
				upRows = append(upRows, r)
			}
		}
		if len(upRows) < 2 {
			b.Fatal("no HW scale-up rows")
		}
		hw8over4 = float64(get("scale-up", 4, upRows[0].Nodes)) / float64(get("scale-up", 8, upRows[0].Nodes))
		scaleOut = float64(get("scale-out", 4, 1)) / float64(get("scale-out", 4, 3))
	}
	b.ReportMetric(hw8over4, "hw-8c-speedup-x") // < 1 reproduces the collapse
	b.ReportMetric(scaleOut, "hw-3node-speedup-x")
}

// BenchmarkFigure8Training regenerates Figure 8: distributed training
// latency across worker counts and protection modes. Metrics report the
// HW-vs-native slowdown and the 3-worker speedup.
func BenchmarkFigure8Training(b *testing.B) {
	var hwSlowdown, speedup3 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		get := func(system string, workers int) time.Duration {
			for _, r := range rows {
				if r.System == system && r.Workers == workers {
					return r.Latency
				}
			}
			b.Fatalf("missing row %s/%d", system, workers)
			return 0
		}
		hwSlowdown = float64(get("secureTF HW", 1)) / float64(get("Native", 1))
		speedup3 = float64(get("secureTF HW", 1)) / float64(get("secureTF HW", 3))
	}
	b.ReportMetric(hwSlowdown, "hw-vs-native-x")
	b.ReportMetric(speedup3, "hw-3worker-speedup-x")
}

// BenchmarkDistShardedTraining measures the sharded parameter server
// along Figure 8's two axes: the classic worker-scaling speedup (2
// workers vs 1) and the per-shard push wire time at 4 workers as the
// variables fan out over 1, 2 and 4 PS shards. Metrics
// speedup-2workers-x and push-wire-ms-shard{1,2,4} are the CI bench
// gate's regression subjects; push-wire-1to4-x is the sharding win
// (should approach 4× as the placement balances).
func BenchmarkDistShardedTraining(b *testing.B) {
	var rows []experiments.Fig8ShardRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure8Shards(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	get := func(workers, shards int) experiments.Fig8ShardRow {
		for _, r := range rows {
			if r.Workers == workers && r.Shards == shards {
				return r
			}
		}
		b.Fatalf("missing shard-sweep row workers=%d shards=%d", workers, shards)
		return experiments.Fig8ShardRow{}
	}
	b.ReportMetric(get(2, 1).Speedup1W, "speedup-2workers-x")
	w1 := get(4, 1).PushWirePerShard
	w2 := get(4, 2).PushWirePerShard
	w4 := get(4, 4).PushWirePerShard
	b.ReportMetric(w1.Seconds()*1000, "push-wire-ms-shard1")
	b.ReportMetric(w2.Seconds()*1000, "push-wire-ms-shard2")
	b.ReportMetric(w4.Seconds()*1000, "push-wire-ms-shard4")
	if w4 > 0 {
		b.ReportMetric(float64(w1)/float64(w4), "push-wire-1to4-x")
	}
}

// BenchmarkDistAsync measures the bounded-staleness parameter-server
// sweep (Figure8Async): 4 workers, 2 PS shards, one straggler, the same
// global step budget trained synchronously and at staleness bounds
// K ∈ {0, 2, 8, ∞}. Metric async-speedup-kinf-x — the virtual-time
// throughput of unbounded async over the synchronous barrier — is the
// CI bench gate's regression subject (the async rows run on a
// deterministic discrete-event schedule, so it is stable run to run);
// loss-ratio-k8 tracks the convergence cost of the bound and
// k0-retries the rejection traffic at the tightest bound.
func BenchmarkDistAsync(b *testing.B) {
	var rows []experiments.Fig8AsyncRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure8Async(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	get := func(policy string) experiments.Fig8AsyncRow {
		for _, r := range rows {
			if r.Policy == policy {
				return r
			}
		}
		b.Fatalf("missing async-sweep row %q", policy)
		return experiments.Fig8AsyncRow{}
	}
	sync := get("sync")
	b.ReportMetric(sync.Throughput, "steps-per-s-sync")
	b.ReportMetric(get("async K=inf").Throughput, "steps-per-s-kinf")
	b.ReportMetric(get("async K=inf").Throughput/sync.Throughput, "async-speedup-kinf-x")
	b.ReportMetric(get("async K=8").FinalLoss/sync.FinalLoss, "loss-ratio-k8")
	b.ReportMetric(float64(get("async K=0").Retries), "k0-retries")
}

// BenchmarkDistCompress measures the gradient codecs on the push path
// (Figure8Compress): the fixed 4-worker, 2-shard MNIST job pushed raw,
// int8-quantized and top-k-sparsified, with and without TLS. Metrics
// int8-wire-reduction-x and topk-wire-reduction-x are the exact
// push-frame-byte ratios versus the uncompressed run (≥3× and more,
// deterministic — they count bytes, not time) and are the CI bench
// gate's regression subjects; loss-ratio-int8 / loss-ratio-topk track
// the convergence cost the error-feedback residual keeps near 1.
func BenchmarkDistCompress(b *testing.B) {
	var rows []experiments.Fig8CompressRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure8Compress(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	get := func(codec string, tls bool) experiments.Fig8CompressRow {
		for _, r := range rows {
			if r.Codec == codec && r.TLS == tls {
				return r
			}
		}
		b.Fatalf("missing compress-sweep row codec=%q tls=%v", codec, tls)
		return experiments.Fig8CompressRow{}
	}
	none, int8r, topk := get("none", true), get("int8", true), get("topk f=0.05", true)
	b.ReportMetric(float64(none.PushBytesPerRound)/1024, "push-kb-none")
	b.ReportMetric(float64(int8r.PushBytesPerRound)/1024, "push-kb-int8")
	b.ReportMetric(float64(topk.PushBytesPerRound)/1024, "push-kb-topk")
	b.ReportMetric(float64(none.PushBytesPerRound)/float64(int8r.PushBytesPerRound), "int8-wire-reduction-x")
	b.ReportMetric(float64(none.PushBytesPerRound)/float64(topk.PushBytesPerRound), "topk-wire-reduction-x")
	b.ReportMetric(int8r.FinalLoss/none.FinalLoss, "loss-ratio-int8")
	b.ReportMetric(topk.FinalLoss/none.FinalLoss, "loss-ratio-topk")
	// The honest-vtime half of the story: send() charges serialization
	// for the bytes actually framed, so the per-shard push wire time
	// drops by the codec's ratio too (deterministic, unlike end-to-end
	// latency, which jitters with concurrent push arrival order).
	b.ReportMetric(float64(none.PushWirePerShard)/float64(topk.PushWirePerShard), "wire-vtime-reduction-topk-x")
}

// BenchmarkDistElastic measures the elastic barrier (Figure9Elastic):
// the same 4-worker, 2-shard synchronous job run uninterrupted and
// with one worker killed mid-job. Metric survivor-throughput-ratio-x —
// the killed run's committed-round throughput over the baseline's — is
// the CI bench gate's regression subject, and the elasticity promise
// is enforced here as a hard floor: losing 1 of W workers may not cost
// more than that worker's share, ratio ≥ (W-1)/W. A barrier that
// re-blocks on dead workers (or an eviction path whose detection
// charge grows) fails the run outright.
func BenchmarkDistElastic(b *testing.B) {
	var rows []experiments.Fig9Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure9Elastic(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) != 2 {
		b.Fatalf("elastic sweep returned %d rows, want 2", len(rows))
	}
	base, kill := rows[0], rows[1]
	if kill.Rounds != base.Rounds {
		b.Fatalf("killed run committed %d rounds, baseline %d — the eviction lost rounds", kill.Rounds, base.Rounds)
	}
	ratio := kill.RoundsPerSec / base.RoundsPerSec
	b.ReportMetric(base.RoundsPerSec, "rounds-per-vs-baseline")
	b.ReportMetric(kill.RoundsPerSec, "rounds-per-vs-1kill")
	b.ReportMetric(ratio, "survivor-throughput-ratio-x")
	b.ReportMetric(float64(kill.Evictions), "evictions")
	b.ReportMetric(float64(kill.ShrunkRounds), "shrunk-rounds")
	if floor := float64(base.Workers-1) / float64(base.Workers); ratio < floor {
		b.Fatalf("survivor throughput ratio %.3f below the elasticity floor (W-1)/W = %.2f", ratio, floor)
	}
}

// BenchmarkFederated measures the federated subsystem at population
// scale: 256 clients, a quarter sampled per round, quorum at 80% of the
// cohort (so every round completes without its 13 slowest members and
// the dropout seed-reveal path runs at scale), pairwise-masked secure
// aggregation throughout. The same job runs under each uplink codec.
// Metric fed-rounds-per-vs is the virtual-time round throughput;
// fed-uplink-kb-{none,int8,topk} count the accepted masked payload
// bytes (deterministic — they count bytes, not time), and
// fed-topk-uplink-reduction-x is the top-k win over the dense upload
// (~10× at f=0.1) — the CI bench gate's regression subjects.
func BenchmarkFederated(b *testing.B) {
	const (
		clients = 256
		frac    = 0.25 // 64 sampled per round
		quorum  = 51   // 80% of the cohort
		rounds  = 2
		steps   = 2
		batch   = 20
	)
	run := func(comp securetf.FedCompression) *securetf.FederatedResult {
		res, err := securetf.TrainFederated(securetf.FederatedConfig{
			Clients:        clients,
			SampleFraction: frac,
			Quorum:         quorum,
			Rounds:         rounds,
			LocalSteps:     steps,
			BatchSize:      batch,
			LocalLR:        0.05,
			Compression:    comp,
			Seed:           42,
			NewModel:       func() securetf.Model { return securetf.NewMNISTMLP(1) },
			ShardData: func(client int) (*securetf.Tensor, *securetf.Tensor, error) {
				fs := securetf.NewMemFS()
				if err := securetf.GenerateMNIST(fs, "shard", steps*batch, 0, int64(1000+client)); err != nil {
					return nil, nil, err
				}
				return securetf.LoadMNIST(fs, "shard/train-images-idx3-ubyte", "shard/train-labels-idx1-ubyte")
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds != rounds {
			b.Fatalf("job committed %d rounds, want %d", res.Rounds, rounds)
		}
		if res.Refusals == 0 || res.Reveals == 0 {
			b.Fatalf("quorum never cut a round short (refusals %d, reveals %d) — the dropout path went unexercised",
				res.Refusals, res.Reveals)
		}
		return res
	}
	var none, int8r, topk *securetf.FederatedResult
	for i := 0; i < b.N; i++ {
		none = run(securetf.NoFedCompression())
		int8r = run(securetf.Int8FedCompression())
		topk = run(securetf.TopKFedCompression(0.1))
	}
	b.ReportMetric(float64(none.Rounds)/none.Latency.Seconds(), "fed-rounds-per-vs")
	b.ReportMetric(float64(none.UplinkBytes)/1024, "fed-uplink-kb-none")
	b.ReportMetric(float64(int8r.UplinkBytes)/1024, "fed-uplink-kb-int8")
	b.ReportMetric(float64(topk.UplinkBytes)/1024, "fed-uplink-kb-topk")
	b.ReportMetric(float64(none.UplinkBytes)/float64(topk.UplinkBytes), "fed-topk-uplink-reduction-x")
}

// BenchmarkTFvsTFLite regenerates the §5.3 #4 comparison: full
// TensorFlow versus TensorFlow Lite inference in HW mode. Metric
// tflite-speedup-x is the paper's ~71×.
func BenchmarkTFvsTFLite(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TFvsTFLite(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(rows[0].Latency) / float64(rows[1].Latency)
	}
	b.ReportMetric(ratio, "tflite-speedup-x")
}

// BenchmarkServingThroughput measures the serving gateway's sustained
// throughput at micro-batch sizes 1 (the unbatched baseline), 8 and 32:
// concurrent clients send single-row classification requests over the
// container listener and the gateway coalesces what arrives within the
// batching window. Metrics report wall requests/sec and virtual
// requests/sec (the cost-model view, where batching amortizes per-invoke
// weight streaming) so future PRs have a perf trajectory.
func BenchmarkServingThroughput(b *testing.B) {
	model := securetf.BuildInferenceModel(securetf.PaperModels()[0]) // densenet, 42 MB
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			platform, err := securetf.NewPlatform("serving-bench-node")
			if err != nil {
				b.Fatal(err)
			}
			c, err := securetf.Launch(securetf.ContainerConfig{
				Kind:     securetf.SconeHW,
				Platform: platform,
				Image:    securetf.TFLiteImage(),
				HostFS:   securetf.NewMemFS(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			cfg := securetf.ServingConfig{QueueCap: 256}
			if batch > 1 {
				cfg.MaxBatch = batch
				cfg.BatchWindow = 2 * time.Millisecond
			}
			gw, err := securetf.ServeModels(c, securetf.ModelServerConfig{Addr: "127.0.0.1:0", ServingConfig: cfg})
			if err != nil {
				b.Fatal(err)
			}
			defer gw.Close()
			if err := gw.Register("densenet", 1, model); err != nil {
				b.Fatal(err)
			}

			// Enough synchronous single-row clients that the largest
			// batch size can actually fill a window. At least 4 requests
			// per client flow even when b.N is 1 (the CI bench job runs
			// -benchtime 1x), so the batched paths genuinely coalesce
			// and the gated req/s-virtual metric measures batching, not
			// a single lonely request; the custom metrics are computed
			// over the real request count.
			const clients = 32
			requests := b.N
			if requests < 4*clients {
				requests = 4 * clients
			}
			input := securetf.RandomImageInput(securetf.PaperModels()[0], 1, 1)
			b.ResetTimer()
			vBefore := c.Clock().Now()
			start := time.Now()
			errs := make(chan error, clients)
			for i := 0; i < clients; i++ {
				count := requests / clients
				if i < requests%clients {
					count++
				}
				go func(count int) {
					if count == 0 {
						errs <- nil
						return
					}
					cl, err := securetf.DialModelServer(c, securetf.ModelClientConfig{Addr: gw.Addr()})
					if err != nil {
						errs <- err
						return
					}
					defer cl.Close()
					for j := 0; j < count; j++ {
						if _, err := cl.Classify("densenet", input); err != nil {
							errs <- err
							return
						}
					}
					errs <- nil
				}(count)
			}
			for i := 0; i < clients; i++ {
				if err := <-errs; err != nil {
					b.Fatal(err)
				}
			}
			served := float64(requests)
			b.ReportMetric(served/time.Since(start).Seconds(), "req/s-wall")
			b.ReportMetric(served/(c.Clock().Now()-vBefore).Seconds(), "req/s-virtual")
			b.StopTimer() // keep gateway/container teardown out of ns/op
			var batches int64
			for _, m := range gw.Metrics() {
				batches += m.Batches
			}
			if batches > 0 {
				b.ReportMetric(served/float64(batches), "rows-per-invoke")
			}
		})
	}
}

// BenchmarkServingAutoscale measures the control plane's elasticity
// story at batch 32: the same 32-client workload runs against a static
// two-replica gateway and against the autoscaler starting from a single
// replica, each also hosting a second model that receives two warmup
// requests and then goes idle. Metric recovery-x — autoscaled virtual
// req/s over the static baseline — is the CI bench gate's regression
// subject (the acceptance bar is recovery within 20%, i.e. ≥ 0.8);
// replica-seconds-static vs replica-seconds-autoscale show the enclave
// capacity the right-sizing and scale-to-zero save (fewer interpreter
// replicas resident means a smaller attacked/paged enclave working set,
// the TensorSCONE argument), and idle-replicas-after pins the idle
// model's interpreter pool actually evicting to zero.
func BenchmarkServingAutoscale(b *testing.B) {
	model := securetf.BuildInferenceModel(securetf.PaperModels()[0]) // densenet, 42 MB
	const clients = 32
	requests := b.N
	if requests < 4*clients {
		requests = 4 * clients
	}
	input := securetf.RandomImageInput(securetf.PaperModels()[0], 1, 1)

	run := func(auto bool) (reqPerVSec, replicaSec float64, idleReplicas int) {
		platform, err := securetf.NewPlatform("autoscale-bench-node")
		if err != nil {
			b.Fatal(err)
		}
		c, err := securetf.Launch(securetf.ContainerConfig{
			Kind:     securetf.SconeHW,
			Platform: platform,
			Image:    securetf.TFLiteImage(),
			HostFS:   securetf.NewMemFS(),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		cfg := securetf.ServingConfig{
			Replicas:    2,
			QueueCap:    256,
			MaxBatch:    32,
			BatchWindow: 2 * time.Millisecond,
		}
		if auto {
			cfg.Replicas = 1
			cfg.Autoscale = &securetf.ServingAutoscale{MaxReplicas: 8}
		}
		gw, err := securetf.ServeModels(c, securetf.ModelServerConfig{Addr: "127.0.0.1:0", ServingConfig: cfg})
		if err != nil {
			b.Fatal(err)
		}
		defer gw.Close()
		if err := gw.Register("densenet", 1, model); err != nil {
			b.Fatal(err)
		}
		if err := gw.Register("idle", 1, model); err != nil {
			b.Fatal(err)
		}

		// Touch the idle model so its interpreter pool exists, then
		// leave it alone: the static gateway keeps it resident for the
		// whole run, the autoscaler notices the silence and evicts it.
		warm, err := securetf.DialModelServer(c, securetf.ModelClientConfig{Addr: gw.Addr()})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := warm.Classify("idle", input); err != nil {
				b.Fatal(err)
			}
		}
		warm.Close()

		vBefore := c.Clock().Now()
		errs := make(chan error, clients)
		for i := 0; i < clients; i++ {
			count := requests / clients
			if i < requests%clients {
				count++
			}
			go func(count int) {
				if count == 0 {
					errs <- nil
					return
				}
				cl, err := securetf.DialModelServer(c, securetf.ModelClientConfig{Addr: gw.Addr()})
				if err != nil {
					errs <- err
					return
				}
				defer cl.Close()
				for j := 0; j < count; j++ {
					if _, err := cl.Classify("densenet", input); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}(count)
		}
		for i := 0; i < clients; i++ {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
		if auto {
			// Force the verdict on the drained gateway: the first tick
			// absorbs the workload's residual arrival delta, the second
			// sees true idleness and parks what has drained.
			gw.TickAutoscale()
			gw.TickAutoscale()
			idleReplicas = gw.AutoscaleReplicas("idle")
		}
		reqPerVSec = float64(requests) / (c.Clock().Now() - vBefore).Seconds()
		replicaSec = gw.ReplicaSeconds("densenet") + gw.ReplicaSeconds("idle")
		return reqPerVSec, replicaSec, idleReplicas
	}

	var recovery, rsStatic, rsAuto float64
	var idleAfter int
	for i := 0; i < b.N; i++ {
		staticRPS, staticRS, _ := run(false)
		autoRPS, autoRS, idle := run(true)
		recovery = autoRPS / staticRPS
		rsStatic, rsAuto, idleAfter = staticRS, autoRS, idle
	}
	b.ReportMetric(recovery, "recovery-x")
	b.ReportMetric(rsStatic, "replica-seconds-static")
	b.ReportMetric(rsAuto, "replica-seconds-autoscale")
	b.ReportMetric(float64(idleAfter), "idle-replicas-after")
	if idleAfter != 0 {
		b.Fatalf("idle model still has %d replicas after drain; scale-to-zero did not evict", idleAfter)
	}
	if rsAuto >= rsStatic {
		b.Fatalf("autoscale used %.3f replica-seconds, static %.3f — no capacity saved", rsAuto, rsStatic)
	}
}

// BenchmarkServingRouter measures the router tier's horizontal scaling:
// the same 16-client single-row workload runs against fleets of 1, 2
// and 4 gateway nodes, every node on its own platform (its own virtual
// clock — a separate machine in the cost model). Aggregate virtual
// req/s divides requests by the busiest node's clock advance, so with
// even spread it grows with the fleet; metric scaling-1to2-x (reported
// on the nodes2 run) is the CI bench gate's regression subject — the
// acceptance bar is >= 1.7x from one node to two.
func BenchmarkServingRouter(b *testing.B) {
	model := securetf.BuildInferenceModel(securetf.PaperModels()[0]) // densenet, 42 MB
	input := securetf.RandomImageInput(securetf.PaperModels()[0], 1, 1)
	const clients = 16

	launch := func(name string) *securetf.Container {
		platform, err := securetf.NewPlatform(name)
		if err != nil {
			b.Fatal(err)
		}
		c, err := securetf.Launch(securetf.ContainerConfig{
			Kind:     securetf.SconeHW,
			Platform: platform,
			Image:    securetf.TFLiteImage(),
			HostFS:   securetf.NewMemFS(),
		})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}

	rpsAt := make(map[int]float64)
	for _, nodeCount := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes%d", nodeCount), func(b *testing.B) {
			nodeCs := make([]*securetf.Container, nodeCount)
			specs := make([]securetf.RouterNode, nodeCount)
			for i := 0; i < nodeCount; i++ {
				c := launch(fmt.Sprintf("router-bench-node-%d", i))
				defer c.Close()
				gw, err := securetf.ServeModels(c, securetf.ModelServerConfig{
					Addr:          "127.0.0.1:0",
					ServingConfig: securetf.ServingConfig{QueueCap: 256},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer gw.Close()
				if err := gw.Register("densenet", 1, model); err != nil {
					b.Fatal(err)
				}
				nodeCs[i] = c
				specs[i] = securetf.RouterNode{
					Name:   fmt.Sprintf("node-%d", i),
					Addr:   gw.Addr(),
					Models: []string{"densenet"},
				}
			}
			routerC := launch("router-bench-front")
			defer routerC.Close()
			rt, err := securetf.ServeRouter(routerC, securetf.RouterConfig{
				Addr:  "127.0.0.1:0",
				Nodes: specs,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			clientC := launch("router-bench-client")
			defer clientC.Close()

			requests := b.N
			if requests < 4*clients {
				requests = 4 * clients
			}
			vBefore := make([]time.Duration, nodeCount)
			for i, c := range nodeCs {
				vBefore[i] = c.Clock().Now()
			}
			b.ResetTimer()
			start := time.Now()
			errs := make(chan error, clients)
			for i := 0; i < clients; i++ {
				count := requests / clients
				if i < requests%clients {
					count++
				}
				go func(count int) {
					if count == 0 {
						errs <- nil
						return
					}
					cl, err := securetf.DialRouter(clientC, securetf.RouterClientConfig{
						Addr:         rt.Addr(),
						VerifyKey:    rt.ManifestKey().Public(),
						ExpectModels: []string{"densenet"},
					})
					if err != nil {
						errs <- err
						return
					}
					defer cl.Close()
					for j := 0; j < count; j++ {
						if _, err := cl.Classify("densenet", input); err != nil {
							errs <- err
							return
						}
					}
					errs <- nil
				}(count)
			}
			for i := 0; i < clients; i++ {
				if err := <-errs; err != nil {
					b.Fatal(err)
				}
			}
			// The fleet's virtual makespan is the busiest node's clock
			// advance: separate platforms run concurrently in the cost
			// model, so even spread divides the work.
			var makespan time.Duration
			for i, c := range nodeCs {
				if d := c.Clock().Now() - vBefore[i]; d > makespan {
					makespan = d
				}
			}
			served := float64(requests)
			rps := served / makespan.Seconds()
			rpsAt[nodeCount] = rps
			b.ReportMetric(rps, "req/s-virtual-aggregate")
			b.ReportMetric(served/time.Since(start).Seconds(), "req/s-wall")
			if base, ok := rpsAt[1]; ok && nodeCount == 2 {
				b.ReportMetric(rps/base, "scaling-1to2-x")
			}
			if base, ok := rpsAt[1]; ok && nodeCount == 4 {
				b.ReportMetric(rps/base, "scaling-1to4-x")
			}
			b.StopTimer()
		})
	}
}

// --- Ablations (DESIGN.md §8) ---

// BenchmarkAblationPagingPattern isolates the paging cost model: the
// same 160 MB working set accessed streaming (read-only weights) versus
// random read-write (training state) on a 94 MB EPC. The thrash/stream
// ratio is the mechanism behind Figure 5's Graphene collapse and
// Figure 7's core-scaling collapse. Metrics are virtual milliseconds.
func BenchmarkAblationPagingPattern(b *testing.B) {
	const workingSet = 160 << 20
	access := func(pattern sgx.AccessPattern) time.Duration {
		platform, err := sgx.NewPlatform("paging-node", sgx.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		enclave, err := platform.CreateEnclave(sgx.SyntheticImage("app", 1<<20, 4<<20), sgx.ModeHW)
		if err != nil {
			b.Fatal(err)
		}
		defer enclave.Destroy()
		enclave.Alloc("working-set", workingSet)
		before := platform.Clock().Now()
		enclave.Access(workingSet, pattern)
		return platform.Clock().Now() - before
	}
	var stream, thrash time.Duration
	for i := 0; i < b.N; i++ {
		stream = access(sgx.AccessStreaming)
		thrash = access(sgx.AccessRandom)
	}
	b.ReportMetric(stream.Seconds()*1000, "stream-ms-virtual")
	b.ReportMetric(thrash.Seconds()*1000, "thrash-ms-virtual")
	b.ReportMetric(float64(thrash)/float64(stream), "thrash-vs-stream-x")
}

// BenchmarkAblationSyscallPath compares SCONE's exit-less asynchronous
// syscalls against the library-OS synchronous path (two enclave
// transitions per call) on a small-file workload — the design choice of
// §3.3's user-level threading. Metrics are virtual milliseconds.
func BenchmarkAblationSyscallPath(b *testing.B) {
	const files = 64
	run := func(kind securetf.RuntimeKind) time.Duration {
		platform, err := securetf.NewPlatform("syscall-node")
		if err != nil {
			b.Fatal(err)
		}
		c, err := securetf.Launch(securetf.ContainerConfig{
			Kind:     kind,
			Platform: platform,
			Image:    securetf.TFLiteImage(),
			HostFS:   securetf.NewMemFS(),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		payload := make([]byte, 4096)
		before := c.Clock().Now()
		for f := 0; f < files; f++ {
			name := fmt.Sprintf("f%d", f)
			if err := securetf.WriteFile(c.FS(), name, payload); err != nil {
				b.Fatal(err)
			}
			if _, err := securetf.ReadFile(c.FS(), name); err != nil {
				b.Fatal(err)
			}
		}
		return c.Clock().Now() - before
	}
	var async, sync time.Duration
	for i := 0; i < b.N; i++ {
		async = run(securetf.SconeHW)
		sync = run(securetf.Graphene)
	}
	b.ReportMetric(async.Seconds()*1000, "async-ms-virtual")
	b.ReportMetric(sync.Seconds()*1000, "sync-ms-virtual")
	b.ReportMetric(float64(sync)/float64(async), "sync-vs-async-x")
}

// BenchmarkAblationEPCSize projects §7.1's hardware fix: Inception-v4
// classification on today's 94 MB EPC versus a future CPU with a 256 MB
// EPC (the Ice Lake direction the paper anticipates).
func BenchmarkAblationEPCSize(b *testing.B) {
	spec := securetf.PaperModels()[2] // inception_v4, 163 MB
	model := securetf.BuildInferenceModel(spec)
	input := securetf.RandomImageInput(spec, 1, 1)
	run := func(epc int64) time.Duration {
		params := securetf.DefaultParams()
		params.EPCSize = epc
		platform, err := securetf.NewPlatformWithParams("epc-node", params)
		if err != nil {
			b.Fatal(err)
		}
		c, err := securetf.Launch(securetf.ContainerConfig{
			Kind:     securetf.SconeHW,
			Platform: platform,
			Image:    securetf.TFLiteImage(),
			HostFS:   securetf.NewMemFS(),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		classifier, err := securetf.NewClassifier(c, model, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer classifier.Close()
		before := c.Clock().Now()
		if _, err := classifier.Classify(input); err != nil {
			b.Fatal(err)
		}
		return c.Clock().Now() - before
	}
	var sgxv1, icelake time.Duration
	for i := 0; i < b.N; i++ {
		sgxv1 = run(94 << 20)
		icelake = run(256 << 20)
	}
	b.ReportMetric(sgxv1.Seconds()*1000, "epc94-ms-virtual")
	b.ReportMetric(icelake.Seconds()*1000, "epc256-ms-virtual")
	b.ReportMetric(float64(sgxv1)/float64(icelake), "large-epc-speedup-x")
}

// BenchmarkAblationQuantization measures §7.2's model optimization:
// int8 weight quantization shrinks the enclave working set ~4×, which
// matters exactly when the float model exceeds the EPC.
func BenchmarkAblationQuantization(b *testing.B) {
	spec := securetf.PaperModels()[2] // inception_v4, 163 MB: well past the EPC
	run := func(model *securetf.LiteModel) time.Duration {
		input := securetf.RandomImageInput(spec, 1, 1)
		platform, err := securetf.NewPlatform("quant-node")
		if err != nil {
			b.Fatal(err)
		}
		c, err := securetf.Launch(securetf.ContainerConfig{
			Kind:     securetf.SconeHW,
			Platform: platform,
			Image:    securetf.TFLiteImage(),
			HostFS:   securetf.NewMemFS(),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		classifier, err := securetf.NewClassifier(c, model, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer classifier.Close()
		before := c.Clock().Now()
		if _, err := classifier.Classify(input); err != nil {
			b.Fatal(err)
		}
		return c.Clock().Now() - before
	}
	float32Model := securetf.BuildInferenceModel(spec)
	quantModel, err := securetf.BuildQuantizedInferenceModel(spec)
	if err != nil {
		b.Fatal(err)
	}
	var full, quant time.Duration
	for i := 0; i < b.N; i++ {
		full = run(float32Model)
		quant = run(quantModel)
	}
	b.ReportMetric(full.Seconds()*1000, "float32-ms-virtual")
	b.ReportMetric(quant.Seconds()*1000, "int8-ms-virtual")
	b.ReportMetric(float64(full)/float64(quant), "quantized-speedup-x")
}

// BenchmarkAblationElasticScaling reproduces design challenge ➍: an
// autoscaler spawns four new service containers, each needing
// attestation before it may serve. With the WAN-bound IAS every spawn
// pays ~300 ms; with the local CAS the whole wave attests in a few
// milliseconds per container.
func BenchmarkAblationElasticScaling(b *testing.B) {
	const containers = 4
	var casTotal, iasTotal time.Duration
	for i := 0; i < b.N; i++ {
		var err error
		casTotal, iasTotal, err = experiments.ElasticScaling(containers)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(casTotal.Seconds()*1000/containers, "cas-ms-per-container")
	b.ReportMetric(iasTotal.Seconds()*1000/containers, "ias-ms-per-container")
	if casTotal > 0 {
		b.ReportMetric(float64(iasTotal)/float64(casTotal), "cas-speedup-x")
	}
}
