package securetf

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/securetf/securetf/internal/federated"
	"github.com/securetf/securetf/internal/seccrypto"
	"github.com/securetf/securetf/internal/tf/dist"
	"github.com/securetf/securetf/internal/vtime"
)

// FederatedCoordinator runs FedAvg quorum rounds with pairwise-masked
// secure aggregation (the paper's §6.2 use case promoted to a
// first-class subsystem).
type FederatedCoordinator = federated.Coordinator

// FederatedClient is one simulated federated participant.
type FederatedClient = federated.Client

// FedCompression selects the federated uplink quantizer. Unlike the
// parameter-server gradient codecs it operates over integer rings, so
// the pairwise masks of secure aggregation cancel bit-exactly in the
// coordinator's sum.
type FedCompression = federated.Codec

// NoFedCompression uploads exact 64-bit fixed-point words (the
// default).
func NoFedCompression() FedCompression { return federated.NoCompression() }

// Int8FedCompression quantizes updates to signed 8-bit steps of a
// public clip bound, carried in a 16-bit ring (~4× fewer uplink
// bytes).
func Int8FedCompression() FedCompression { return federated.Int8Compression() }

// TopKFedCompression uploads only the round's shared pseudo-random
// fraction f ∈ (0, 1] of coordinates per variable; the pattern is
// derived from the round seed on both sides, so no index bytes travel
// (~1/f fewer uplink bytes). Unsent mass carries over in client-side
// error-feedback residuals.
func TopKFedCompression(f float64) FedCompression { return federated.TopKCompression(f) }

// FederatedTurnstile serializes simulated federated clients into
// deterministic virtual-time order, making a whole job bit-reproducible
// at a fixed seed. Join every client (with its container's clock)
// before any of them runs; a nil turnstile leaves clients free-threaded.
type FederatedTurnstile = federated.Turnstile

// NewFederatedTurnstile returns an empty scheduler.
func NewFederatedTurnstile() *FederatedTurnstile { return federated.NewTurnstile() }

// FederatedConfig configures TrainFederated, the one-call form of the
// paper's §6.2 federated-learning deployment: an aggregator node
// running FedAvg quorum rounds over a population of simulated clients
// with pairwise-masked secure aggregation.
type FederatedConfig struct {
	// Kind selects the aggregator's runtime. Defaults to SconeHW.
	Kind RuntimeKind
	// Clients is the client population size N. Required, ≥ 1.
	Clients int
	// SampleFraction is the fraction of the population sampled into
	// each round's cohort, in (0, 1]. Zero samples everyone.
	SampleFraction float64
	// Quorum is the number of accepted uploads that completes a round;
	// stragglers past it are refused and retry next round. Required.
	Quorum int
	// Rounds is the number of FedAvg rounds. Required, ≥ 1.
	Rounds int
	// LocalSteps is each sampled client's local SGD step count per
	// round. Required, ≥ 1.
	LocalSteps int
	// BatchSize is the local minibatch size. Required, ≥ 1.
	BatchSize int
	// LocalLR is the client-side SGD learning rate. Required, > 0.
	LocalLR float64
	// ServerLR scales the averaged update applied per round. Zero means
	// 1 (plain FedAvg).
	ServerLR float64
	// Compression is the uplink codec (default NoFedCompression).
	Compression FedCompression
	// Seed drives client sampling and the top-k coordinate patterns.
	Seed int64
	// Secret is the cohort masking secret shared by the clients and
	// withheld from the aggregator. Empty derives one from Seed — fine
	// for simulation; real deployments provision it out of band (the
	// federated_learning example uses CAS session secrets).
	Secret []byte
	// Unmasked disables secure aggregation (ablation only).
	Unmasked bool
	// NewModel builds one model replica; called once for the
	// aggregator's seed variables and once per client. Must be
	// deterministic so all replicas start identical.
	NewModel func() Model
	// ShardData returns client id's private training shard.
	ShardData func(client int) (xs, ys *Tensor, err error)
	// StepCost is the virtual compute time charged per local step
	// (default 2ms).
	StepCost time.Duration
	// StragglerFraction marks the trailing fraction of client ids as
	// stragglers: each round they finish StragglerDelay late, miss the
	// quorum and are refused. Zero disables straggling.
	StragglerFraction float64
	// StragglerDelay is the stragglers' extra virtual latency per round
	// (default 1s when StragglerFraction > 0).
	StragglerDelay time.Duration
	// PayloadTap observes every accepted upload payload (round, client,
	// variable, raw bytes) — the hook the sum-only property tests use.
	PayloadTap func(round uint64, client uint32, name string, payload []byte)
}

// FederatedResult reports a federated training job's outcome.
type FederatedResult struct {
	// Vars is the final global model.
	Vars map[string]*Tensor
	// Rounds is the number of committed rounds.
	Rounds int
	// Accepted counts accepted client uploads across all rounds.
	Accepted int
	// Refusals counts uploads refused at closed rounds (stragglers).
	Refusals int
	// Reveals counts the pair-seed reveals that resolved dropouts.
	Reveals int
	// UplinkBytes totals the accepted upload payload bytes — the
	// quantity the uplink codec shrinks.
	UplinkBytes int64
	// Latency is the end-to-end virtual time: the maximum over the
	// aggregator and every client clock.
	Latency time.Duration
}

// StartFederatedAggregator starts a FedAvg coordinator inside an
// already-attested container, listening on addr (the manual form of
// TrainFederated's aggregator, for deployments that stand up their own
// CAS topology). Only the aggregator-side fields of cfg apply —
// Clients, SampleFraction, Quorum, Rounds, ServerLR, Compression,
// Unmasked, Seed, PayloadTap, and NewModel for the initial variables.
// It returns the coordinator and the bound address clients dial.
func StartFederatedAggregator(c *Container, addr string, cfg FederatedConfig) (*FederatedCoordinator, string, error) {
	if c == nil {
		return nil, "", errors.New("securetf: StartFederatedAggregator requires a container")
	}
	if cfg.NewModel == nil {
		return nil, "", errors.New("securetf: FederatedConfig.NewModel is required")
	}
	ln, err := c.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("securetf: aggregator listen: %w", err)
	}
	coord, err := federated.NewCoordinator(federated.CoordinatorConfig{
		Listener:       ln,
		Vars:           InitialVariables(cfg.NewModel()),
		Clients:        cfg.Clients,
		SampleFraction: cfg.SampleFraction,
		Quorum:         cfg.Quorum,
		Rounds:         cfg.Rounds,
		ServerLR:       cfg.ServerLR,
		Codec:          cfg.Compression,
		Unmasked:       cfg.Unmasked,
		Seed:           cfg.Seed,
		Clock:          c.Clock(),
		Params:         c.Params(),
		Tap:            cfg.PayloadTap,
	})
	if err != nil {
		ln.Close()
		return nil, "", err
	}
	return coord, ln.Addr().String(), nil
}

// FederatedPeerSpec configures one manually-started federated client.
type FederatedPeerSpec struct {
	// ID is this client's index in the population, in [0, Population).
	ID int
	// Addr is the aggregator address. Required.
	Addr string
	// ServerName is the aggregator's TLS identity, used when the
	// container's network shield is provisioned (default "aggregator").
	ServerName string
	// Model is this client's local replica (build from the same seed as
	// the aggregator's initial variables). Required.
	Model Model
	// XS and YS are the client's private data shard. Required.
	XS, YS *Tensor
	// BatchSize and LocalSteps shape each round's local training.
	BatchSize  int
	LocalSteps int
	// LocalLR is the local SGD learning rate.
	LocalLR float64
	// Compression must match the aggregator's codec (the handshake
	// rejects mismatches).
	Compression FedCompression
	// Population is the total client count N.
	Population int
	// Secret is the cohort masking secret every client shares and the
	// aggregator never sees. Required unless Unmasked.
	Secret []byte
	// Unmasked must match the aggregator's setting.
	Unmasked bool
	// StepCost is the virtual compute time per local step (default 2ms).
	StepCost time.Duration
	// Turnstile optionally serializes this client with its peers for
	// bit-reproducible runs.
	Turnstile *FederatedTurnstile
}

// StartFederatedClient connects a federated participant inside a
// container to an aggregator. Dial goes through the container, so the
// network shield's TLS applies and the client talks only to the
// attested aggregator identity. Call Run on the returned client; it
// participates in rounds until the aggregator reports training
// complete.
func StartFederatedClient(c *Container, spec FederatedPeerSpec) (*FederatedClient, error) {
	if c == nil {
		return nil, errors.New("securetf: StartFederatedClient requires a container")
	}
	if spec.Model.Graph == nil || spec.XS == nil || spec.YS == nil {
		return nil, errors.New("securetf: FederatedPeerSpec.Model, XS and YS are required")
	}
	serverName := spec.ServerName
	if serverName == "" {
		serverName = "aggregator"
	}
	cl, err := federated.NewClient(federated.ClientConfig{
		ID:   spec.ID,
		Addr: spec.Addr,
		Dial: func(network, addr string) (net.Conn, error) {
			return c.Dial(network, addr, serverName)
		},
		Model: dist.Model{
			Graph:  spec.Model.Graph,
			X:      spec.Model.X,
			Y:      spec.Model.Y,
			Loss:   spec.Model.Loss,
			Logits: spec.Model.Logits,
		},
		XS:         spec.XS,
		YS:         spec.YS,
		BatchSize:  spec.BatchSize,
		LocalSteps: spec.LocalSteps,
		LocalLR:    spec.LocalLR,
		Codec:      spec.Compression,
		Population: spec.Population,
		Secret:     spec.Secret,
		Unmasked:   spec.Unmasked,
		Clock:      c.Clock(),
		Params:     c.Params(),
		StepCost:   spec.StepCost,
		Turnstile:  spec.Turnstile,
	})
	if err != nil {
		return nil, fmt.Errorf("securetf: start federated client %d: %w", spec.ID, err)
	}
	return cl, nil
}

// TrainFederated runs a complete federated job: it launches the
// aggregator in an enclave container, simulates the client population
// on virtual clocks under a discrete-event scheduler (so runs are
// bit-reproducible at a fixed seed), and trains for the configured
// rounds. Clients are plain processes — in this architecture the
// enclave protects the aggregator, while clients protect themselves by
// never uploading an unmasked update.
func TrainFederated(cfg FederatedConfig) (*FederatedResult, error) {
	if cfg.NewModel == nil || cfg.ShardData == nil {
		return nil, errors.New("securetf: FederatedConfig.NewModel and ShardData are required")
	}
	if cfg.Kind == 0 {
		cfg.Kind = SconeHW
	}
	if cfg.StragglerFraction < 0 || cfg.StragglerFraction > 1 {
		return nil, fmt.Errorf("securetf: straggler fraction %v outside [0, 1]", cfg.StragglerFraction)
	}
	if cfg.StragglerDelay == 0 {
		cfg.StragglerDelay = time.Second
	}
	secret := cfg.Secret
	if len(secret) == 0 && !cfg.Unmasked {
		key := seccrypto.HKDF([]byte(fmt.Sprintf("seed %d", cfg.Seed)), "securetf-fed-secret", "cohort")
		secret = key[:]
	}

	platform, err := NewPlatform("fed-aggregator")
	if err != nil {
		return nil, err
	}
	agg, err := Launch(ContainerConfig{
		Kind:     cfg.Kind,
		Platform: platform,
		Image:    TensorFlowImage(),
		HostFS:   NewMemFS(),
	})
	if err != nil {
		return nil, err
	}
	defer agg.Close()
	ln, err := agg.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("securetf: aggregator listen: %w", err)
	}
	coord, err := federated.NewCoordinator(federated.CoordinatorConfig{
		Listener:       ln,
		Vars:           InitialVariables(cfg.NewModel()),
		Clients:        cfg.Clients,
		SampleFraction: cfg.SampleFraction,
		Quorum:         cfg.Quorum,
		Rounds:         cfg.Rounds,
		ServerLR:       cfg.ServerLR,
		Codec:          cfg.Compression,
		Unmasked:       cfg.Unmasked,
		Seed:           cfg.Seed,
		Clock:          agg.Clock(),
		Params:         agg.Params(),
		Tap:            cfg.PayloadTap,
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	defer coord.Close()

	stragglers := int(float64(cfg.Clients) * cfg.StragglerFraction)
	isStraggler := func(id int) bool { return id >= cfg.Clients-stragglers }
	ts := federated.NewTurnstile()
	clients := make([]*federated.Client, cfg.Clients)
	clocks := make([]*vtime.Clock, cfg.Clients)
	for id := 0; id < cfg.Clients; id++ {
		xs, ys, err := cfg.ShardData(id)
		if err != nil {
			return nil, fmt.Errorf("securetf: client %d shard: %w", id, err)
		}
		m := cfg.NewModel()
		clocks[id] = &vtime.Clock{}
		ccfg := federated.ClientConfig{
			ID:         id,
			Addr:       ln.Addr().String(),
			Dial:       net.Dial,
			Model:      dist.Model{Graph: m.Graph, X: m.X, Y: m.Y, Loss: m.Loss, Logits: m.Logits},
			XS:         xs,
			YS:         ys,
			BatchSize:  cfg.BatchSize,
			LocalSteps: cfg.LocalSteps,
			LocalLR:    cfg.LocalLR,
			Codec:      cfg.Compression,
			Population: cfg.Clients,
			Secret:     secret,
			Unmasked:   cfg.Unmasked,
			Clock:      clocks[id],
			Params:     agg.Params(),
			StepCost:   cfg.StepCost,
			Turnstile:  ts,
		}
		if isStraggler(id) {
			ccfg.Delay = func(round uint64) time.Duration { return cfg.StragglerDelay }
		}
		c, err := federated.NewClient(ccfg)
		if err != nil {
			return nil, fmt.Errorf("securetf: federated client %d: %w", id, err)
		}
		defer c.Close()
		clients[id] = c
		// The full roster joins before any client runs, so the
		// discrete-event schedule starts against the complete
		// participant set.
		ts.Join(id, clocks[id])
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Clients)
	for id, c := range clients {
		wg.Add(1)
		go func(id int, c *federated.Client) {
			defer wg.Done()
			errs[id] = c.Run()
		}(id, c)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	stats := coord.Stats()
	res := &FederatedResult{
		Vars:        coord.Vars(),
		Rounds:      stats.Rounds,
		Accepted:    stats.Accepted,
		Refusals:    stats.Refusals,
		Reveals:     stats.Reveals,
		UplinkBytes: stats.UplinkBytes,
		Latency:     agg.Clock().Now(),
	}
	for _, clock := range clocks {
		if t := clock.Now(); t > res.Latency {
			res.Latency = t
		}
	}
	return res, nil
}
