package securetf

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/securetf/securetf/internal/tf/dist"
)

// chaosWaveTimeout is the wall-clock hang guard on every chaos wait: a
// wave that never finishes or a round the shards never commit fails the
// run explicitly instead of hanging the test suite.
const chaosWaveTimeout = 60 * time.Second

// chaosReconnect is the redial window workers get when the fault plan
// restarts parameter-server shards mid-job.
const chaosReconnect = 5 * time.Second

// chaosJob drives a TrainDistributed run under a fault plan: the rounds
// run in lockstep waves, and kills, rejoins and shard restarts land
// between waves — on a quiescent cluster — so the same plan against the
// same seed always produces the same trajectory.
type chaosJob struct {
	cfg            DistTrainConfig
	res            *DistTrainResult
	launchNode     func(name string, server, shielded bool) (*Container, error)
	psOpts         func(c *Container, s int) []PSOption
	loadCheckpoint func(c *Container, dir string, s int) (*DistCheckpoint, error)
	vars           map[string]*Tensor
	shardNodes     []*Container
	shards         []*ParameterServer
	addrs          []string
	workerNodes    []*Container
	workers        []*TrainingWorker
	// retired collects killed worker instances so their wire and drop
	// counters still fold into the result.
	retired []*TrainingWorker
	// statsBase accumulates the elasticity counters of shards that were
	// restarted, so a restart does not erase its shard's history.
	statsBase   []PSStats
	xs, ys      []*Tensor
	startRounds int
	abort       func()
}

func (j *chaosJob) reconnect() time.Duration {
	if j.cfg.Chaos.HasKind(FaultRestartShard) {
		return chaosReconnect
	}
	return 0
}

// startWorker launches (or relaunches) worker w's training client on
// its container. startStep aligns the minibatch schedule: a rejoining
// replacement walks the same data windows the dead worker would have.
func (j *chaosJob) startWorker(w, startStep int) (*TrainingWorker, error) {
	return StartTrainingWorker(j.workerNodes[w], WorkerSpec{
		ID:         w,
		Addrs:      j.addrs,
		ServerName: "parameter-server",
		Model:      j.cfg.NewModel(),
		XS:         j.xs[w], YS: j.ys[w],
		BatchSize:        j.cfg.BatchSize,
		Consistency:      j.cfg.Consistency,
		ShardConsistency: j.cfg.ShardConsistency,
		Compression:      j.cfg.Compression,
		StartStep:        startStep,
		Reconnect:        j.reconnect(),
	})
}

// retire kills worker w: its connections close (the elastic barrier
// evicts it on the next round timeout) and the instance moves to the
// retired list for final accounting.
func (j *chaosJob) retire(w int) {
	if j.workers[w] == nil {
		return
	}
	j.retired = append(j.retired, j.workers[w])
	j.workers[w].Close()
	j.workers[w] = nil
}

// restartShard kills PS shard s and brings it back from its latest
// checkpoint on a fresh container: same address, same options, same
// snapshot volume and key. The cluster sits at `round` committed
// rounds, which must be exactly what the checkpoint recorded — restarts
// land only on checkpoint boundaries, so the resumed trajectory is
// bit-identical. Workers redial lazily through their Reconnect window.
func (j *chaosJob) restartShard(s, round int) error {
	j.shards[s].Close()
	base := j.shards[s].Stats()
	j.statsBase[s].Evictions += base.Evictions
	j.statsBase[s].Rejoins += base.Rejoins
	j.statsBase[s].ShrunkRounds += base.ShrunkRounds
	j.shardNodes[s].Close()
	c, err := j.launchNode(fmt.Sprintf("ps-shard-%d-r%d", s, round), true, true)
	if err != nil {
		return fmt.Errorf("securetf: restart shard %d: %w", s, err)
	}
	j.shardNodes[s] = c
	ck, err := j.loadCheckpoint(c, j.cfg.Checkpoint.Dir, s)
	if err != nil {
		return fmt.Errorf("securetf: restart shard %d: %w", s, err)
	}
	if ck.Rounds != round {
		return fmt.Errorf("securetf: restart shard %d: checkpoint is at round %d, cluster at %d (restart off a checkpoint boundary)", s, ck.Rounds, round)
	}
	opts := append(j.psOpts(c, s), WithResume(ck))
	ps, _, err := StartParameterServer(c, j.addrs[s], j.vars, j.cfg.Workers, j.cfg.LR, opts...)
	if err != nil {
		return fmt.Errorf("securetf: restart shard %d: %w", s, err)
	}
	j.shards[s] = ps
	return nil
}

// waitCommitted polls until every shard has committed n rounds, with
// the wall-clock hang guard — the "zero hangs" assertion every chaos
// wait runs under.
func (j *chaosJob) waitCommitted(n int) error {
	//securetf:allow nowallclock the chaos hang guard is wall by definition: a hang is a real bug, nothing virtual advances
	deadline := time.Now().Add(chaosWaveTimeout)
	for {
		ok := true
		for _, ps := range j.shards {
			if ps.Rounds() < n {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		//securetf:allow nowallclock wall deadline check for the hang guard above
		if time.Now().After(deadline) {
			return fmt.Errorf("securetf: chaos run stuck: shards never committed round %d", n)
		}
		//securetf:allow nowallclock real poll interval while waiting on real goroutines
		time.Sleep(2 * time.Millisecond)
	}
}

func (j *chaosJob) run() error {
	cfg, plan := j.cfg, j.cfg.Chaos
	alive := make([]bool, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		xs, ys, err := cfg.ShardData(w)
		if err != nil {
			return err
		}
		j.xs[w], j.ys[w] = xs, ys
		worker, err := j.startWorker(w, j.startRounds)
		if err != nil {
			return err
		}
		j.workers[w] = worker
		alive[w] = true
	}

	type rejoin struct{ worker, at int }
	var rejoins []rejoin
	for round := j.startRounds; round < cfg.Rounds; round++ {
		// Shard restarts scheduled for "after `round` committed rounds"
		// run first, on the quiescent cluster.
		for _, f := range plan.FaultsAt(round) {
			if f.Kind == dist.FaultRestartShard {
				if err := j.restartShard(f.Shard, round); err != nil {
					return err
				}
			}
		}
		// Replacement workers due this round rejoin while nothing is in
		// flight, so every shard folds them back immediately.
		kept := rejoins[:0]
		for _, rj := range rejoins {
			if rj.at > round {
				kept = append(kept, rj)
				continue
			}
			worker, err := j.startWorker(rj.worker, round)
			if err != nil {
				return fmt.Errorf("securetf: rejoin worker %d at round %d: %w", rj.worker, round, err)
			}
			j.workers[rj.worker] = worker
			alive[rj.worker] = true
		}
		rejoins = kept
		// Kills land before the round's step: the worker simply never
		// pushes, and the elastic barrier evicts it on the timeout.
		stall := make(map[int]bool)
		delay := make(map[int]time.Duration)
		for _, f := range plan.FaultsAt(round) {
			switch f.Kind {
			case dist.FaultKillWorker:
				if !alive[f.Worker] {
					continue
				}
				j.retire(f.Worker)
				alive[f.Worker] = false
				if f.Rejoin > 0 {
					rejoins = append(rejoins, rejoin{f.Worker, round + f.Rejoin})
				}
			case dist.FaultStallWorker:
				stall[f.Worker] = true
			case dist.FaultDelayPush:
				delay[f.Worker] += f.Delay
			}
		}

		// The wave: every live worker takes one step concurrently.
		errs := make([]error, cfg.Workers)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			if !alive[w] {
				continue
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				worker := j.workers[w]
				if d := delay[w]; d > 0 {
					// A slow worker: the extra virtual time stretches the
					// round for everyone blocked on the barrier.
					j.workerNodes[w].Clock().Advance(d)
				}
				if stall[w] {
					// The classic straggler: compute, then hold the push
					// until the shards have committed the round without
					// us. The late push bounces off the moved-on barrier
					// (eviction) and the worker rejoins in place.
					if err := worker.BeginStep(); err != nil {
						errs[w] = err
						return
					}
					if err := j.waitCommitted(round + 1); err != nil {
						errs[w] = err
						return
					}
					if err := worker.FinishStep(); err != nil {
						errs[w] = err
						return
					}
				} else if err := worker.Step(); err != nil {
					errs[w] = err
					return
				}
				j.res.Losses[w] = append(j.res.Losses[w], worker.LastLoss)
			}(w)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		//securetf:allow nowallclock wall watchdog on a real goroutine wave; all virtual clocks are parked if this fires
		case <-time.After(chaosWaveTimeout):
			j.abort()
			<-done
			return fmt.Errorf("securetf: chaos run stuck: round %d wave never finished", round)
		}
		if err := errors.Join(errs...); err != nil {
			j.abort()
			return err
		}
		if err := j.waitCommitted(round + 1); err != nil {
			return err
		}
	}
	return nil
}
