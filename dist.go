package securetf

import (
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/securetf/securetf/internal/tf/dist"
)

// ParameterServer holds the model variables of a distributed training
// job and applies synchronously averaged gradients (the paper's §5.4
// between-graph data-parallel architecture).
type ParameterServer = dist.ParameterServer

// TrainingWorker runs synchronous SGD steps against a parameter server.
type TrainingWorker = dist.Worker

// InitialVariables extracts a model's initial variable values — the
// state a parameter server is seeded with. Build every worker replica
// from the same seed so replicas match this state.
func InitialVariables(m Model) map[string]*Tensor { return dist.InitialVars(m.Graph) }

// PSOption tunes a parameter server.
type PSOption func(*dist.PSConfig)

// WithRoundTimeout bounds how long a synchronous round may stay
// incomplete after its first gradient push. When it expires — a worker
// died or hung, the elasticity/fault-tolerance concern of §3.2 — the
// round aborts and blocked workers receive an error instead of hanging.
func WithRoundTimeout(d time.Duration) PSOption {
	return func(cfg *dist.PSConfig) { cfg.RoundTimeout = d }
}

// StartParameterServer starts a parameter server inside a container,
// listening on addr through the container's (possibly TLS-shielded)
// listener. workers is the synchronous-round size and lr the learning
// rate applied to averaged gradients. The PS's gradient-averaging work
// is charged to the container's cost model.
func StartParameterServer(c *Container, addr string, vars map[string]*Tensor, workers int, lr float64, opts ...PSOption) (*ParameterServer, net.Addr, error) {
	if c == nil {
		return nil, nil, errors.New("securetf: StartParameterServer requires a container")
	}
	ln, err := c.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("securetf: parameter server listen: %w", err)
	}
	if e := c.Enclave(); e != nil {
		var varBytes int64
		for _, v := range vars {
			varBytes += v.Bytes()
		}
		e.Alloc("ps/vars", varBytes)
	}
	dev := c.Device(1)
	cfg := dist.PSConfig{
		Listener: ln,
		Vars:     vars,
		Workers:  workers,
		LR:       lr,
		Clock:    c.Clock(),
		Params:   c.Params(),
		ApplyMeter: func(flops, bytes int64) {
			dev.Compute(flops)
			dev.Access(bytes, false)
		},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	ps, err := dist.NewParameterServer(cfg)
	if err != nil {
		ln.Close()
		return nil, nil, fmt.Errorf("securetf: start parameter server: %w", err)
	}
	return ps, ln.Addr(), nil
}

// WorkerSpec configures one distributed training worker.
type WorkerSpec struct {
	// ID distinguishes workers.
	ID int
	// Addr is the parameter server address. Required.
	Addr string
	// ServerName is the TLS identity of the parameter server, used when
	// the container's network shield is provisioned.
	ServerName string
	// Model is this worker's local replica (build from the same seed as
	// the variables the PS was seeded with). Required.
	Model Model
	// XS and YS are the worker's data shard. Required.
	XS, YS *Tensor
	// BatchSize is the per-step minibatch size (the paper uses 100).
	BatchSize int
	// Threads bounds the worker's compute parallelism (0 uses the
	// container default).
	Threads int
}

// StartTrainingWorker connects a worker inside a container to a
// parameter server. Dial goes through the container, so the network
// shield's TLS applies exactly as in the paper's Figure 8 "w/ TLS"
// series.
func StartTrainingWorker(c *Container, spec WorkerSpec) (*TrainingWorker, error) {
	if c == nil {
		return nil, errors.New("securetf: StartTrainingWorker requires a container")
	}
	if spec.Model.Graph == nil || spec.XS == nil || spec.YS == nil {
		return nil, errors.New("securetf: WorkerSpec.Model, XS and YS are required")
	}
	serverName := spec.ServerName
	if serverName == "" {
		serverName = "parameter-server"
	}
	worker, err := dist.NewWorker(dist.WorkerConfig{
		ID:   spec.ID,
		Addr: spec.Addr,
		Dial: func(network, addr string) (net.Conn, error) {
			return c.Dial(network, addr, serverName)
		},
		Model: dist.Model{
			Graph:  spec.Model.Graph,
			X:      spec.Model.X,
			Y:      spec.Model.Y,
			Loss:   spec.Model.Loss,
			Logits: spec.Model.Logits,
		},
		XS:        spec.XS,
		YS:        spec.YS,
		BatchSize: spec.BatchSize,
		Device:    c.Device(spec.Threads),
		Clock:     c.Clock(),
		Params:    c.Params(),
	})
	if err != nil {
		return nil, fmt.Errorf("securetf: start training worker %d: %w", spec.ID, err)
	}
	return worker, nil
}
