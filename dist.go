package securetf

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/securetf/securetf/internal/seccrypto"
	"github.com/securetf/securetf/internal/tf/dist"
)

// ParameterServer holds the model variables of a distributed training
// job and applies synchronously averaged gradients (the paper's §5.4
// between-graph data-parallel architecture).
type ParameterServer = dist.ParameterServer

// TrainingWorker runs synchronous SGD steps against a parameter server.
type TrainingWorker = dist.Worker

// InitialVariables extracts a model's initial variable values — the
// state a parameter server is seeded with. Build every worker replica
// from the same seed so replicas match this state.
func InitialVariables(m Model) map[string]*Tensor { return dist.InitialVars(m.Graph) }

// ConsistencyPolicy selects how a parameter-server shard commits
// gradient pushes: SyncConsistency (barrier rounds, the default) or
// AsyncConsistency (apply-on-push under a bounded staleness K).
type ConsistencyPolicy = dist.ConsistencyPolicy

// SyncConsistency is the synchronous barrier policy — every worker in
// lockstep, gradients averaged per round. The zero ConsistencyPolicy
// value is the same thing, so existing configurations are unchanged.
func SyncConsistency() ConsistencyPolicy { return dist.Sync() }

// AsyncConsistency applies every gradient push the moment it arrives
// (no barrier — a straggler no longer gates its peers) and rejects, for
// worker-side retry, any push computed against variables more than
// `staleness` versions old. 0 demands fresh gradients; negative means
// unbounded. Each applied push is scaled by LR/Workers, so async is a
// relaxation of the same optimizer the synchronous rounds run.
func AsyncConsistency(staleness int) ConsistencyPolicy { return dist.Async(staleness) }

// GradCompression selects the gradient codec of a training cluster's
// push path: NoGradCompression (raw float32, the default),
// Int8GradCompression (per-tensor symmetric int8, ~4× fewer wire bytes)
// or TopKGradCompression(f) (top fraction f of entries by magnitude,
// sent sparse). The lossy codecs keep a worker-side error-feedback
// residual — the mass a frame rounds away or drops is re-added to the
// next step's gradient — so convergence is preserved. Like the
// consistency policy, the codec is negotiated in the connection
// handshake and a mixed-codec cluster fails at worker construction.
type GradCompression = dist.Compression

// NoGradCompression is the raw float32 push path — bit-for-bit today's
// wire format, and the zero value.
func NoGradCompression() GradCompression { return dist.NoCompression() }

// Int8GradCompression quantizes each pushed gradient tensor to int8
// with one symmetric per-tensor scale.
func Int8GradCompression() GradCompression { return dist.Int8Compression() }

// TopKGradCompression sparsifies each pushed gradient tensor to the top
// fraction f ∈ (0, 1] of entries by magnitude.
func TopKGradCompression(f float64) GradCompression { return dist.TopKCompression(f) }

// PSOption tunes a parameter server.
type PSOption func(*dist.PSConfig)

// WithRoundTimeout bounds how long a synchronous round may stay
// incomplete after its first gradient push. When it expires — a worker
// died or hung, the elasticity/fault-tolerance concern of §3.2 — the
// round aborts and blocked workers receive an error instead of hanging.
func WithRoundTimeout(d time.Duration) PSOption {
	return func(cfg *dist.PSConfig) { cfg.RoundTimeout = d }
}

// WithShard places the parameter server as shard `shard` (0-based) of a
// `shards`-node sharded cluster. The server retains only the variables
// the name-hash placement assigns to it; workers must be started with
// the full ordered shard address list (WorkerSpec.Addrs). The default is
// the classic single parameter server — exactly the 1-shard case.
func WithShard(shard, shards int) PSOption {
	return func(cfg *dist.PSConfig) { cfg.Shard, cfg.Shards = shard, shards }
}

// WithConsistency sets the shard's commit policy. Workers must expect
// the same policy for this shard (WorkerSpec.Consistency /
// ShardConsistency) — the connection handshake rejects mismatches.
func WithConsistency(p ConsistencyPolicy) PSOption {
	return func(cfg *dist.PSConfig) { cfg.Consistency = p }
}

// WithCompression sets the gradient codec the shard decodes on its push
// path. Workers must push with the same codec
// (WorkerSpec.Compression) — the connection handshake rejects
// mismatches, since a mixed-codec cluster would corrupt gradients
// silently.
func WithCompression(c GradCompression) PSOption {
	return func(cfg *dist.PSConfig) { cfg.Compression = c }
}

// WithElastic turns the shard's round timeout from an abort into an
// eviction (the paper's §3.2 elasticity): members that never pushed are
// declared dead, the barrier shrinks to the survivors and the round
// commits from the gradients it has, averaged over the contributors.
// minWorkers floors the shrunk barrier (0 defaults to 1); a timed-out
// round with fewer pushes still aborts. Requires a synchronous shard
// and a WithRoundTimeout to detect the dead.
func WithElastic(minWorkers int) PSOption {
	return func(cfg *dist.PSConfig) { cfg.Elastic, cfg.MinWorkers = true, minWorkers }
}

// WithCheckpoint snapshots the shard every `every` committed rounds:
// the encoded DistCheckpoint is handed to write before the round's
// barrier releases, so a crash after round r either left the full
// round-r snapshot or none. A write error aborts the round.
func WithCheckpoint(every int, write func(data []byte) error) PSOption {
	return func(cfg *dist.PSConfig) { cfg.CheckpointEvery, cfg.CheckpointWrite = every, write }
}

// WithResume seeds the shard from a checkpoint instead of the fresh
// variable values: variables, committed-round count and barrier
// generation continue exactly where the snapshot left off.
func WithResume(c *DistCheckpoint) PSOption {
	return func(cfg *dist.PSConfig) { cfg.Resume = c }
}

// PSStats counts a parameter-server shard's elasticity events:
// Evictions, Rejoins and ShrunkRounds.
type PSStats = dist.PSStats

// DistCheckpoint is one parameter-server shard's restart state — the
// variables, committed-round count and barrier generation a fresh shard
// needs (via WithResume) to continue a killed one.
type DistCheckpoint = dist.Checkpoint

// EncodeDistCheckpoint serializes a shard snapshot; the variable
// payload is tf.SaveCheckpoint-compatible.
func EncodeDistCheckpoint(c *DistCheckpoint) []byte { return dist.EncodeCheckpoint(c) }

// DecodeDistCheckpoint parses a shard snapshot, validating every length
// so truncated or bit-flipped files error instead of panicking.
func DecodeDistCheckpoint(data []byte) (*DistCheckpoint, error) { return dist.DecodeCheckpoint(data) }

// FaultPlan is a deterministic, seedable schedule of injected failures
// for chaos-testing a distributed training job: the same plan against
// the same seed yields the same trajectory.
type FaultPlan = dist.FaultPlan

// Fault is one scheduled failure of a FaultPlan.
type Fault = dist.Fault

// FaultKind names one kind of injected failure.
type FaultKind = dist.FaultKind

// The fault kinds a plan may schedule.
const (
	FaultKillWorker   = dist.FaultKillWorker
	FaultStallWorker  = dist.FaultStallWorker
	FaultDelayPush    = dist.FaultDelayPush
	FaultRestartShard = dist.FaultRestartShard
)

// ParseFaultPlan parses the textual fault-plan grammar
// (semicolon-separated `kill:w0@r2+rejoin1`, `stall:w1@r3`,
// `delay:w2@r1+5ms`, `restart:ps0@r4` entries).
func ParseFaultPlan(s string) (*FaultPlan, error) { return dist.ParseFaultPlan(s) }

// RandomFaultPlan draws a reproducible churn schedule of worker kills
// and rejoins from a seed.
func RandomFaultPlan(seed int64, workers, rounds int) *FaultPlan {
	return dist.RandomFaultPlan(seed, workers, rounds)
}

// StartParameterServer starts a parameter server inside a container,
// listening on addr through the container's (possibly TLS-shielded)
// listener. workers is the synchronous-round size and lr the learning
// rate applied to averaged gradients. The PS's gradient-averaging work
// is charged to the container's cost model. Pass the full model variable
// set even with WithShard: the server keeps only its own partition.
func StartParameterServer(c *Container, addr string, vars map[string]*Tensor, workers int, lr float64, opts ...PSOption) (*ParameterServer, net.Addr, error) {
	if c == nil {
		return nil, nil, errors.New("securetf: StartParameterServer requires a container")
	}
	ln, err := c.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("securetf: parameter server listen: %w", err)
	}
	dev := c.Device(1)
	cfg := dist.PSConfig{
		Listener: ln,
		Vars:     vars,
		Workers:  workers,
		LR:       lr,
		Clock:    c.Clock(),
		Params:   c.Params(),
		ApplyMeter: func(flops, bytes int64) {
			dev.Compute(flops)
			dev.Access(bytes, false)
		},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if e := c.Enclave(); e != nil {
		// Only this shard's partition of the variables lives in the
		// enclave (all of them in the 1-shard case).
		shards := cfg.Shards
		if shards == 0 {
			shards = 1
		}
		var varBytes int64
		for _, v := range dist.ShardVars(vars, cfg.Shard, shards) {
			varBytes += v.Bytes()
		}
		e.Alloc("ps/vars", varBytes)
	}
	ps, err := dist.NewParameterServer(cfg)
	if err != nil {
		ln.Close()
		return nil, nil, fmt.Errorf("securetf: start parameter server: %w", err)
	}
	return ps, ln.Addr(), nil
}

// WorkerSpec configures one distributed training worker.
type WorkerSpec struct {
	// ID distinguishes workers.
	ID int
	// Addr is the parameter server address of a single-shard cluster.
	// Exactly one of Addr and Addrs is required.
	Addr string
	// Addrs lists the parameter-server shard addresses in shard order
	// (Addrs[s] is shard s of len(Addrs)). The connection handshake
	// verifies each endpoint's shard identity and variable manifest, so
	// a mis-sharded or partially started cluster fails fast.
	Addrs []string
	// ServerName is the TLS identity of the parameter server, used when
	// the container's network shield is provisioned.
	ServerName string
	// Model is this worker's local replica (build from the same seed as
	// the variables the PS was seeded with). Required.
	Model Model
	// XS and YS are the worker's data shard. Required.
	XS, YS *Tensor
	// BatchSize is the per-step minibatch size (the paper uses 100).
	BatchSize int
	// Threads bounds the worker's compute parallelism (0 uses the
	// container default).
	Threads int
	// Consistency is the commit policy this worker expects every shard
	// to run (default SyncConsistency); ShardConsistency overrides it
	// per shard id for clusters that mix policies deliberately. The
	// handshake verifies each expectation, so a mixed-up cluster fails
	// at construction instead of stranding a barrier.
	Consistency      ConsistencyPolicy
	ShardConsistency map[int]ConsistencyPolicy
	// Compression is the gradient codec this worker pushes with
	// (default NoGradCompression — raw float32). Every shard must run
	// the same codec (StartParameterServer's WithCompression); the
	// handshake rejects mismatches. Lossy codecs keep their
	// error-feedback residual on this worker.
	Compression GradCompression
	// StartStep offsets the worker's local step counter so a worker
	// started against a resumed cluster walks the same minibatch
	// schedule an uninterrupted run would.
	StartStep int
	// Reconnect, when positive, lets a failed shard exchange redial and
	// retry once within this wall-clock window — the client half of a
	// parameter-server shard restarting from checkpoint.
	Reconnect time.Duration
}

// StartTrainingWorker connects a worker inside a container to a
// parameter server. Dial goes through the container, so the network
// shield's TLS applies exactly as in the paper's Figure 8 "w/ TLS"
// series.
func StartTrainingWorker(c *Container, spec WorkerSpec) (*TrainingWorker, error) {
	if c == nil {
		return nil, errors.New("securetf: StartTrainingWorker requires a container")
	}
	if spec.Model.Graph == nil || spec.XS == nil || spec.YS == nil {
		return nil, errors.New("securetf: WorkerSpec.Model, XS and YS are required")
	}
	serverName := spec.ServerName
	if serverName == "" {
		serverName = "parameter-server"
	}
	worker, err := dist.NewWorker(dist.WorkerConfig{
		ID:    spec.ID,
		Addr:  spec.Addr,
		Addrs: spec.Addrs,
		Dial: func(network, addr string) (net.Conn, error) {
			return c.Dial(network, addr, serverName)
		},
		Model: dist.Model{
			Graph:  spec.Model.Graph,
			X:      spec.Model.X,
			Y:      spec.Model.Y,
			Loss:   spec.Model.Loss,
			Logits: spec.Model.Logits,
		},
		XS:               spec.XS,
		YS:               spec.YS,
		BatchSize:        spec.BatchSize,
		Device:           c.Device(spec.Threads),
		Clock:            c.Clock(),
		Params:           c.Params(),
		Consistency:      spec.Consistency,
		ShardConsistency: spec.ShardConsistency,
		Compression:      spec.Compression,
		StartStep:        spec.StartStep,
		Reconnect:        spec.Reconnect,
	})
	if err != nil {
		return nil, fmt.Errorf("securetf: start training worker %d: %w", spec.ID, err)
	}
	return worker, nil
}

// TrainingBreakdown is the per-phase virtual time of one synchronous
// training step: pull parameters, local compute, push gradients and
// block on the round barrier.
type TrainingBreakdown = dist.Breakdown

// DistTrainConfig configures TrainDistributed, the one-call form of the
// paper's §5.4 distributed training job: one enclave node per parameter
// server shard and per worker, synchronous data-parallel SGD.
type DistTrainConfig struct {
	// Kind selects the runtime every node runs under. Defaults to
	// SconeHW, the secureTF production mode.
	Kind RuntimeKind
	// TLS provisions a private CA and routes all parameter traffic
	// through the network shield (the paper's Figure 8 "w/ TLS" series).
	TLS bool
	// Workers is the number of training workers. Required, ≥ 1.
	Workers int
	// PSShards is the number of parameter-server shards the variables
	// are partitioned across by name hash. Default 1 — the classic
	// single parameter server; the trained model is identical at any
	// shard count, only the wire fan-out changes.
	PSShards int
	// Rounds is the number of synchronous rounds each worker runs.
	// Required, ≥ 1.
	Rounds int
	// BatchSize is the per-worker, per-round minibatch size. Required.
	BatchSize int
	// LR is the learning rate applied to averaged gradients. Required.
	LR float64
	// NewModel builds one model replica. It is called once to seed the
	// parameter servers and once per worker, and must be deterministic
	// (build from a fixed seed) so all replicas start identical.
	NewModel func() Model
	// ShardData returns worker w's private training shard.
	ShardData func(worker int) (xs, ys *Tensor, err error)
	// RoundTimeout bounds how long a round may wait on a straggler
	// before aborting. Zero disables the timeout. Only meaningful for
	// synchronous shards — async shards never block.
	RoundTimeout time.Duration
	// Consistency selects the commit policy of every parameter-server
	// shard (default SyncConsistency — bit-for-bit today's synchronous
	// behavior); ShardConsistency overrides it per shard id, so a
	// cluster can run its hot shard under AsyncConsistency(K) while the
	// rest stay synchronous. Workers are configured to expect the same
	// per-shard policies automatically.
	Consistency      ConsistencyPolicy
	ShardConsistency map[int]ConsistencyPolicy
	// Compression selects the gradient codec of the whole cluster's
	// push path (default NoGradCompression — raw float32, bit-for-bit
	// the existing behavior). The facade wires the same codec into
	// every shard and every worker, so the handshakes always agree;
	// lossy codecs keep their error-feedback residuals worker-side and
	// the trained variables converge to within quantization tolerance
	// of the uncompressed run.
	Compression GradCompression
	// Elastic turns round timeouts into evictions on every shard: when
	// a worker dies or stalls past RoundTimeout, the barrier shrinks to
	// the survivors and the round commits from the gradients it has; a
	// returning worker is folded back in at the next round boundary.
	// Requires a fully synchronous cluster and RoundTimeout > 0.
	Elastic bool
	// MinWorkers floors the shrunk barrier (0 defaults to 1): a
	// timed-out round with fewer pushes still aborts.
	MinWorkers int
	// Checkpoint enables periodic shard snapshots through the shielded
	// file system (see DistCheckpointConfig). Zero disables them.
	Checkpoint DistCheckpointConfig
	// ResumeFrom resumes the whole job from the snapshot directory a
	// previous run's Checkpoint config wrote: every shard restarts from
	// `<ResumeFrom>/shard-<s>.ckpt` and the workers continue at the
	// checkpointed round, walking the same minibatch schedule — for a
	// synchronous cluster the resumed trajectory is bit-identical to an
	// uninterrupted run. Requires Checkpoint.FS and Checkpoint.Key from
	// the run that wrote the snapshots.
	ResumeFrom string
	// Chaos replays a deterministic fault plan against the job: workers
	// are killed, stalled or delayed and shards restarted from
	// checkpoint at the scheduled rounds, with hang detection on every
	// wait. Kill and stall faults require a synchronous cluster and
	// RoundTimeout > 0 (Elastic is switched on automatically); restart
	// faults require Checkpoint.Every > 0. Training runs the rounds in
	// lockstep waves so the schedule — and therefore the trajectory —
	// is reproducible.
	Chaos *FaultPlan
}

// DistCheckpointConfig configures TrainDistributed's periodic shard
// snapshots. The snapshots are written through the file-system shield —
// AES-256-GCM encrypted and authenticated on the host volume — so a
// checkpoint leaks nothing and a tampered one is rejected on resume.
type DistCheckpointConfig struct {
	// Every snapshots every shard each Every committed rounds. The
	// write lands before the round's barrier releases, so a crash after
	// round r either left the full round-r snapshot set or none.
	// 0 disables checkpointing.
	Every int
	// Dir is the snapshot directory on FS. Defaults to "checkpoints".
	Dir string
	// FS is the host volume the encrypted snapshots live on. Defaults
	// to a fresh in-memory volume; pass the same FS (and Key) to a
	// later job with ResumeFrom to resume across runs.
	FS FS
	// Key seals the snapshot volume. Defaults to a freshly drawn key.
	Key *VolumeKey
}

// DistTrainResult reports a distributed training job's outcome.
type DistTrainResult struct {
	// FinalLoss is the mean over workers of the last round's loss.
	FinalLoss float64
	// Losses[w] lists worker w's minibatch losses, one per round it
	// completed. In an uninterrupted run Losses[w][r] is round r's
	// loss; under a resume or a chaos plan the slice covers only the
	// rounds this worker actually ran.
	Losses [][]float64
	// Rounds is the number of rounds committed by every shard when the
	// whole cluster is synchronous. With any async shard, commits are
	// per-push and per-shard, so Rounds reports the per-worker step
	// count instead.
	Rounds int
	// StalenessRetries is the total number of pushes rejected by an
	// async shard's staleness bound and retried, summed over workers.
	// Always 0 for a fully synchronous cluster.
	StalenessRetries int
	// Latency is the end-to-end virtual time: the maximum over every
	// node clock (shards and workers) when the job finished.
	Latency time.Duration
	// Breakdown is the last round's per-phase virtual time, each phase
	// the maximum over workers.
	Breakdown TrainingBreakdown
	// PushWirePerShard is the mean per-shard, per-round virtual wire
	// time of the gradient pushes — the bandwidth bottleneck sharding
	// attacks: with N shards each parameter server receives only ~1/N of
	// every worker's gradient bytes.
	PushWirePerShard time.Duration
	// PushBytes is the total raw frame bytes of every gradient push,
	// summed over workers, shards and rounds — the quantity the
	// gradient codec shrinks (independent of the bandwidth cost model).
	PushBytes int64
	// Evictions, Rejoins and ShrunkRounds are the elastic-barrier
	// counters, the maximum over shards (every shard observes the same
	// dead workers, so the max is the per-cluster count; restarted
	// shards carry their pre-restart counts forward).
	Evictions    int
	Rejoins      int
	ShrunkRounds int
	// DroppedPushes is the number of shard contributions dropped
	// because an elastic barrier committed a round without the pushing
	// worker, summed over all worker instances.
	DroppedPushes int
	// FinalVars is the trained model state, merged across shards — the
	// checkpoint/resume property tests compare it bit-for-bit.
	FinalVars map[string]*Tensor
}

// TrainDistributed runs a complete synchronous data-parallel training
// job: it launches one container per parameter-server shard and per
// worker (each on its own platform, as in the paper's cluster), wires
// the workers to every shard, trains for the configured rounds and
// reports losses, the end-to-end virtual latency and the per-phase
// breakdown. With PSShards: 1 it is exactly the classic single
// parameter-server deployment.
func TrainDistributed(cfg DistTrainConfig) (*DistTrainResult, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("securetf: DistTrainConfig.Workers must be ≥ 1, got %d", cfg.Workers)
	}
	if cfg.PSShards == 0 {
		cfg.PSShards = 1
	}
	if cfg.PSShards < 1 {
		return nil, fmt.Errorf("securetf: DistTrainConfig.PSShards must be ≥ 1, got %d", cfg.PSShards)
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("securetf: DistTrainConfig.Rounds must be ≥ 1, got %d", cfg.Rounds)
	}
	if cfg.NewModel == nil || cfg.ShardData == nil {
		return nil, errors.New("securetf: DistTrainConfig.NewModel and ShardData are required")
	}
	if cfg.Kind == 0 {
		cfg.Kind = SconeHW
	}
	for s := range cfg.ShardConsistency {
		if s < 0 || s >= cfg.PSShards {
			return nil, fmt.Errorf("securetf: DistTrainConfig.ShardConsistency names shard %d of a %d-shard cluster", s, cfg.PSShards)
		}
	}
	policyFor := func(s int) ConsistencyPolicy {
		if p, ok := cfg.ShardConsistency[s]; ok {
			return p
		}
		return cfg.Consistency
	}
	allSync := true
	for s := 0; s < cfg.PSShards; s++ {
		if policyFor(s).Kind != dist.ConsistencySync {
			allSync = false
		}
	}
	if cfg.Elastic && !allSync {
		return nil, errors.New("securetf: DistTrainConfig.Elastic requires a fully synchronous cluster")
	}
	if cfg.Elastic && cfg.RoundTimeout <= 0 {
		return nil, errors.New("securetf: DistTrainConfig.Elastic detects the dead via RoundTimeout; set one")
	}
	if cfg.MinWorkers < 0 || cfg.MinWorkers > cfg.Workers {
		return nil, fmt.Errorf("securetf: DistTrainConfig.MinWorkers must be in [0, %d], got %d", cfg.Workers, cfg.MinWorkers)
	}
	if cfg.Checkpoint.Every < 0 {
		return nil, fmt.Errorf("securetf: DistTrainConfig.Checkpoint.Every must be ≥ 0, got %d", cfg.Checkpoint.Every)
	}
	if cfg.ResumeFrom != "" && (cfg.Checkpoint.FS == nil || cfg.Checkpoint.Key == nil) {
		return nil, errors.New("securetf: DistTrainConfig.ResumeFrom needs the snapshot volume and its key (Checkpoint.FS, Checkpoint.Key)")
	}
	if cfg.Chaos != nil {
		if err := cfg.Chaos.Validate(cfg.Workers, cfg.PSShards, cfg.Rounds, cfg.Checkpoint.Every); err != nil {
			return nil, fmt.Errorf("securetf: DistTrainConfig.Chaos: %w", err)
		}
		if cfg.Chaos.HasKind(FaultKillWorker) || cfg.Chaos.HasKind(FaultStallWorker) {
			if !allSync {
				return nil, errors.New("securetf: chaos kill/stall faults require a fully synchronous cluster")
			}
			if cfg.RoundTimeout <= 0 {
				return nil, errors.New("securetf: chaos kill/stall faults need a RoundTimeout to detect the dead")
			}
			cfg.Elastic = true
		}
	}
	checkpointing := cfg.Checkpoint.Every > 0 || cfg.ResumeFrom != ""
	if checkpointing {
		if cfg.Checkpoint.Dir == "" {
			cfg.Checkpoint.Dir = "checkpoints"
		}
		if cfg.Checkpoint.FS == nil {
			cfg.Checkpoint.FS = NewMemFS()
		}
		if cfg.Checkpoint.Key == nil {
			key, err := NewVolumeKey()
			if err != nil {
				return nil, err
			}
			cfg.Checkpoint.Key = key
		}
	}

	var ca *seccrypto.CA
	if cfg.TLS {
		var err error
		if ca, err = seccrypto.NewCA("train-distributed-ca"); err != nil {
			return nil, err
		}
	}
	launchNode := func(name string, server, shielded bool) (*Container, error) {
		platform, err := NewPlatform(name)
		if err != nil {
			return nil, err
		}
		ccfg := ContainerConfig{
			Kind:     cfg.Kind,
			Platform: platform,
			Image:    TensorFlowImage(),
			HostFS:   NewMemFS(),
		}
		if shielded {
			// Checkpointing shards share the snapshot volume through the
			// file-system shield: the snapshots land encrypted and
			// authenticated, and a restarted shard (same key, same
			// volume) reads them back transparently.
			ccfg.HostFS = cfg.Checkpoint.FS
			ccfg.FSShieldRules = []Rule{EncryptPrefix(cfg.Checkpoint.Dir + "/")}
			if cfg.ResumeFrom != "" && cfg.ResumeFrom != cfg.Checkpoint.Dir {
				ccfg.FSShieldRules = append(ccfg.FSShieldRules, EncryptPrefix(cfg.ResumeFrom+"/"))
			}
			ccfg.VolumeKey = cfg.Checkpoint.Key
		}
		c, err := Launch(ccfg)
		if err != nil {
			return nil, err
		}
		if ca != nil {
			cert, err := ca.Issue(name, "parameter-server", "localhost", "127.0.0.1")
			if err != nil {
				c.Close()
				return nil, err
			}
			if err := c.UseIdentity(cert, ca, server); err != nil {
				c.Close()
				return nil, err
			}
		}
		return c, nil
	}

	// Parameter-server shards, one node each. psOpts is shared with the
	// chaos path's shard restarts, so a resumed shard runs exactly the
	// options the original did.
	ckptPath := func(dir string, s int) string { return fmt.Sprintf("%s/shard-%d.ckpt", dir, s) }
	psOpts := func(c *Container, s int) []PSOption {
		opts := []PSOption{
			WithShard(s, cfg.PSShards), WithRoundTimeout(cfg.RoundTimeout),
			WithConsistency(policyFor(s)), WithCompression(cfg.Compression),
		}
		if cfg.Elastic {
			opts = append(opts, WithElastic(cfg.MinWorkers))
		}
		if cfg.Checkpoint.Every > 0 {
			fsys, p := c.FS(), ckptPath(cfg.Checkpoint.Dir, s)
			opts = append(opts, WithCheckpoint(cfg.Checkpoint.Every, func(data []byte) error {
				return WriteFile(fsys, p, data)
			}))
		}
		return opts
	}
	loadCheckpoint := func(c *Container, dir string, s int) (*DistCheckpoint, error) {
		data, err := ReadFile(c.FS(), ckptPath(dir, s))
		if err != nil {
			return nil, fmt.Errorf("securetf: shard %d checkpoint: %w", s, err)
		}
		ck, err := DecodeDistCheckpoint(data)
		if err != nil {
			return nil, fmt.Errorf("securetf: shard %d checkpoint: %w", s, err)
		}
		if ck.Shards != cfg.PSShards {
			return nil, fmt.Errorf("securetf: shard %d checkpoint is from a %d-shard cluster, this job runs %d", s, ck.Shards, cfg.PSShards)
		}
		return ck, nil
	}

	vars := InitialVariables(cfg.NewModel())
	shardNodes := make([]*Container, cfg.PSShards)
	shards := make([]*ParameterServer, cfg.PSShards)
	addrs := make([]string, cfg.PSShards)
	defer func() {
		// Loops over the slices, not captured values: the chaos path
		// replaces restarted shards in place.
		for _, ps := range shards {
			if ps != nil {
				ps.Close()
			}
		}
		for _, c := range shardNodes {
			if c != nil {
				c.Close()
			}
		}
	}()
	startRounds := 0
	for s := range shards {
		c, err := launchNode(fmt.Sprintf("ps-shard-%d", s), true, checkpointing)
		if err != nil {
			return nil, err
		}
		shardNodes[s] = c
		opts := psOpts(c, s)
		if cfg.ResumeFrom != "" {
			ck, err := loadCheckpoint(c, cfg.ResumeFrom, s)
			if err != nil {
				return nil, err
			}
			if s == 0 {
				startRounds = ck.Rounds
			} else if ck.Rounds != startRounds {
				return nil, fmt.Errorf("securetf: shard %d checkpoint is at round %d, shard 0 at %d (torn snapshot set)", s, ck.Rounds, startRounds)
			}
			opts = append(opts, WithResume(ck))
		}
		ps, addr, err := StartParameterServer(c, "127.0.0.1:0", vars, cfg.Workers, cfg.LR, opts...)
		if err != nil {
			return nil, err
		}
		shards[s] = ps
		addrs[s] = addr.String()
	}
	if startRounds >= cfg.Rounds {
		return nil, fmt.Errorf("securetf: resume checkpoint is already at round %d of a %d-round job", startRounds, cfg.Rounds)
	}

	// Worker nodes, trained concurrently.
	workerNodes := make([]*Container, cfg.Workers)
	defer func() {
		for _, c := range workerNodes {
			if c != nil {
				c.Close()
			}
		}
	}()
	for w := range workerNodes {
		c, err := launchNode(fmt.Sprintf("train-worker-%d", w), false, false)
		if err != nil {
			return nil, err
		}
		workerNodes[w] = c
	}

	res := &DistTrainResult{Losses: make([][]float64, cfg.Workers)}
	workers := make([]*TrainingWorker, cfg.Workers)
	var retired []*TrainingWorker
	statsBase := make([]PSStats, cfg.PSShards)
	// A worker that fails before pushing leaves the others blocked on a
	// barrier that can never fill; closing the shards aborts their
	// rounds so the job returns the error instead of deadlocking (Close
	// is idempotent — the deferred Closes above remain correct).
	var abortOnce sync.Once
	abort := func() {
		abortOnce.Do(func() {
			for _, ps := range shards {
				if ps != nil {
					ps.Close()
				}
			}
		})
	}
	if cfg.Chaos != nil {
		// The chaos path runs the rounds in lockstep waves so the fault
		// schedule — kills, stalls, delays, shard restarts — lands at
		// deterministic points and the trajectory is reproducible.
		job := &chaosJob{
			cfg: cfg, res: res,
			launchNode: launchNode, psOpts: psOpts, loadCheckpoint: loadCheckpoint,
			vars: vars, shardNodes: shardNodes, shards: shards, addrs: addrs,
			workerNodes: workerNodes, workers: workers,
			statsBase: statsBase, startRounds: startRounds, abort: abort,
			xs: make([]*Tensor, cfg.Workers), ys: make([]*Tensor, cfg.Workers),
		}
		if err := job.run(); err != nil {
			abort()
			return nil, err
		}
		retired = job.retired
		for _, worker := range workers {
			if worker != nil {
				worker.Close()
			}
		}
	} else {
		errs := make([]error, cfg.Workers)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					if errs[w] != nil {
						abort()
					}
				}()
				xs, ys, err := cfg.ShardData(w)
				if err != nil {
					errs[w] = err
					return
				}
				worker, err := StartTrainingWorker(workerNodes[w], WorkerSpec{
					ID:         w,
					Addrs:      addrs,
					ServerName: "parameter-server",
					Model:      cfg.NewModel(),
					XS:         xs, YS: ys,
					BatchSize:        cfg.BatchSize,
					Consistency:      cfg.Consistency,
					ShardConsistency: cfg.ShardConsistency,
					Compression:      cfg.Compression,
					StartStep:        startRounds,
				})
				if err != nil {
					errs[w] = err
					return
				}
				defer worker.Close()
				workers[w] = worker
				for r := startRounds; r < cfg.Rounds; r++ {
					if err := worker.Step(); err != nil {
						errs[w] = err
						return
					}
					res.Losses[w] = append(res.Losses[w], worker.LastLoss)
				}
			}(w)
		}
		wg.Wait()
		// Join all worker errors: when one failure aborts the cluster, the
		// root cause surfaces alongside the survivors' abort errors.
		if err := errors.Join(errs...); err != nil {
			return nil, err
		}
	}

	roundsRun := cfg.Rounds - startRounds
	var pushWire time.Duration
	live := 0
	for w, worker := range workers {
		if worker == nil || len(res.Losses[w]) == 0 {
			// A worker killed by the fault plan and never replaced has
			// no final state to fold in.
			continue
		}
		live++
		res.FinalLoss += res.Losses[w][len(res.Losses[w])-1]
		b := worker.LastBreakdown
		if b.Pull > res.Breakdown.Pull {
			res.Breakdown.Pull = b.Pull
		}
		if b.Compute > res.Breakdown.Compute {
			res.Breakdown.Compute = b.Compute
		}
		if b.Push > res.Breakdown.Push {
			res.Breakdown.Push = b.Push
		}
	}
	if live > 0 {
		res.FinalLoss /= float64(live)
	}
	// Wire accounting sums over every worker instance, including the
	// ones the fault plan killed mid-job.
	for _, worker := range append(append([]*TrainingWorker{}, workers...), retired...) {
		if worker == nil {
			continue
		}
		for _, d := range worker.PushWire() {
			pushWire += d
		}
		for _, n := range worker.PushBytes() {
			res.PushBytes += n
		}
		res.StalenessRetries += worker.StalenessRetries()
		res.DroppedPushes += worker.DroppedPushes()
	}
	res.PushWirePerShard = pushWire / time.Duration(cfg.PSShards*roundsRun)
	for s, ps := range shards {
		st := ps.Stats()
		st.Evictions += statsBase[s].Evictions
		st.Rejoins += statsBase[s].Rejoins
		st.ShrunkRounds += statsBase[s].ShrunkRounds
		if st.Evictions > res.Evictions {
			res.Evictions = st.Evictions
		}
		if st.Rejoins > res.Rejoins {
			res.Rejoins = st.Rejoins
		}
		if st.ShrunkRounds > res.ShrunkRounds {
			res.ShrunkRounds = st.ShrunkRounds
		}
	}
	res.FinalVars = make(map[string]*Tensor, len(vars))
	for _, ps := range shards {
		for name, t := range ps.Vars() {
			res.FinalVars[name] = t
		}
	}
	if allSync {
		res.Rounds = shards[0].Rounds()
		for s, ps := range shards {
			if got := ps.Rounds(); got != res.Rounds {
				return nil, fmt.Errorf("securetf: shard %d committed %d rounds, shard 0 committed %d", s, got, res.Rounds)
			}
		}
	} else {
		// Async shards commit per push (and sync shards per barrier), so
		// cross-shard commit counts are not comparable; the job-level
		// round count is the per-worker step count.
		res.Rounds = cfg.Rounds
	}
	for _, c := range shardNodes {
		if t := c.Clock().Now(); t > res.Latency {
			res.Latency = t
		}
	}
	for _, c := range workerNodes {
		if t := c.Clock().Now(); t > res.Latency {
			res.Latency = t
		}
	}
	return res, nil
}
