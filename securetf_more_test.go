package securetf_test

import (
	"bytes"
	"testing"

	securetf "github.com/securetf/securetf"
)

func TestPlatformKeyPEMRoundTrip(t *testing.T) {
	a := newPlatform(t, "node-a")
	b := newPlatform(t, "node-b")
	var blob []byte
	for _, p := range []*securetf.Platform{a, b} {
		pemData, err := securetf.MarshalPlatformKey(p)
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, pemData...)
	}
	// Unrelated PEM blocks must be skipped.
	blob = append(blob, []byte("-----BEGIN CERTIFICATE-----\nAAAA\n-----END CERTIFICATE-----\n")...)
	keys, err := securetf.ParsePlatformKeys(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("parsed %d keys", len(keys))
	}
	for _, p := range []*securetf.Platform{a, b} {
		key, ok := keys[p.Name()]
		if !ok || !key.Equal(p.AttestationKey()) {
			t.Fatalf("key for %s missing or wrong", p.Name())
		}
	}
}

func TestParsePlatformKeysErrors(t *testing.T) {
	if _, err := securetf.ParsePlatformKeys(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := securetf.ParsePlatformKeys([]byte("junk")); err == nil {
		t.Fatal("non-PEM input accepted")
	}
	// A platform-key block without a name header must be rejected.
	p := newPlatform(t, "node")
	pemData, err := securetf.MarshalPlatformKey(p)
	if err != nil {
		t.Fatal(err)
	}
	stripped := bytes.Replace(pemData, []byte("platform: node\n"), nil, 1)
	if _, err := securetf.ParsePlatformKeys(stripped); err == nil {
		t.Fatal("nameless platform key accepted")
	}
}

func TestParseMeasurement(t *testing.T) {
	c := launch(t, securetf.SconeHW, securetf.TFLiteImage())
	hex := c.Enclave().Measurement().Hex()
	m, err := securetf.ParseMeasurement(hex)
	if err != nil {
		t.Fatal(err)
	}
	if m != c.Enclave().Measurement() {
		t.Fatal("measurement round trip mismatch")
	}
	for _, bad := range []string{"", "zz", hex[:10], hex + "00"} {
		if _, err := securetf.ParseMeasurement(bad); err == nil {
			t.Fatalf("bad measurement %q accepted", bad)
		}
	}
}

func TestCrossProcessStyleAttestation(t *testing.T) {
	// The cmd/securetf-cas + cmd/securetf-worker wiring, in-process:
	// explicit trust store, address-only CAS connection.
	casPlat := newPlatform(t, "cas-platform")
	workerPlat := newPlatform(t, "worker-platform")
	trustPEM, err := securetf.MarshalPlatformKey(casPlat)
	if err != nil {
		t.Fatal(err)
	}
	workerPEM, err := securetf.MarshalPlatformKey(workerPlat)
	if err != nil {
		t.Fatal(err)
	}
	trust, err := securetf.ParsePlatformKeys(append(trustPEM, workerPEM...))
	if err != nil {
		t.Fatal(err)
	}

	server, err := securetf.StartCASWithTrust(casPlat, securetf.NewMemFS(), "127.0.0.1:0", trust)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	c := launch(t, securetf.SconeHW, securetf.TFLiteImage(), func(cfg *securetf.ContainerConfig) {
		cfg.Platform = workerPlat
	})
	client, err := securetf.NewCASClientAt(c, server.Addr(), server.Measurement().Hex(), trust)
	if err != nil {
		t.Fatal(err)
	}
	session := &securetf.Session{
		Name:         "xproc",
		OwnerToken:   "tok",
		Measurements: []string{c.Enclave().Measurement().Hex()},
		Secrets:      map[string][]byte{"k": []byte("v")},
	}
	if err := client.Register(session); err != nil {
		t.Fatal(err)
	}
	prov, timing, err := c.Provision(client, "xproc", "")
	if err != nil {
		t.Fatal(err)
	}
	if string(prov.Secrets["k"]) != "v" {
		t.Fatal("secret not provisioned")
	}
	if timing.Total() <= 0 {
		t.Fatal("no attestation time charged")
	}

	// Address-only connection with a wrong expected measurement must be
	// rejected before anything is trusted.
	wrong := launch(t, securetf.SconeHW, securetf.TensorFlowImage(), func(cfg *securetf.ContainerConfig) {
		cfg.Platform = workerPlat
	})
	if _, err := securetf.NewCASClientAt(wrong, server.Addr(), wrong.Enclave().Measurement().Hex(), trust); err == nil {
		t.Fatal("client trusted a CAS with the wrong measurement")
	}
	// Native containers cannot attest.
	native := launch(t, securetf.NativeGlibc, securetf.Image{})
	if _, err := securetf.NewCASClientAt(native, server.Addr(), server.Measurement().Hex(), trust); err == nil {
		t.Fatal("native container attested")
	}
}

func TestFederatedPrimitives(t *testing.T) {
	// Variables / SetVariables / Checkpoint / RestoreCheckpoint — the
	// §6.2 federated-learning building blocks.
	xs, ys := learnableDigits(100, 11)
	a, err := securetf.OpenModel(nil, securetf.NewMNISTMLP(11), securetf.Adam{LR: 0.005}, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.TrainMore(xs, ys, 50, 20); err != nil {
		t.Fatal(err)
	}
	if a.LastLoss() <= 0 {
		t.Fatal("no loss recorded")
	}
	vars, err := a.Variables()
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) == 0 {
		t.Fatal("no variables")
	}

	// A fresh replica given a's variables must classify identically.
	b, err := securetf.OpenModel(nil, securetf.NewMNISTMLP(12), nil, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.SetVariables(vars); err != nil {
		t.Fatal(err)
	}
	accA, err := a.Accuracy(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	accB, err := b.Accuracy(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if accA != accB {
		t.Fatalf("replica accuracy %v != original %v", accB, accA)
	}

	// Checkpoint round trip restores the same state after divergence.
	ckpt := a.Checkpoint()
	if err := a.TrainMore(xs, ys, 50, 5); err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	accRestored, err := a.Accuracy(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if accRestored != accA {
		t.Fatalf("restored accuracy %v != checkpointed %v", accRestored, accA)
	}

	if err := a.SetVariables(map[string]*securetf.Tensor{"no-such-var": securetf.Scalar(1)}); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestOpenModelValidation(t *testing.T) {
	if _, err := securetf.OpenModel(nil, securetf.Model{}, nil, 0, 0); err == nil {
		t.Fatal("empty model accepted")
	}
	m, err := securetf.OpenModel(nil, securetf.NewMNISTMLP(1), nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	xs, ys := learnableDigits(20, 1)
	for _, c := range []struct{ batch, steps int }{{0, 1}, {1, 0}, {-1, 1}} {
		if err := m.TrainMore(xs, ys, c.batch, c.steps); err == nil {
			t.Fatalf("TrainMore(%d, %d) accepted", c.batch, c.steps)
		}
	}
	if err := m.TrainMore(nil, ys, 1, 1); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestCIFARModelTrains(t *testing.T) {
	fs := securetf.NewMemFS()
	if err := securetf.GenerateCIFAR10(fs, "cifar", 128, 1, 3); err != nil {
		t.Fatal(err)
	}
	xs, ys, err := securetf.LoadCIFAR10(fs, "cifar/data_batch_1.bin")
	if err != nil {
		t.Fatal(err)
	}
	trained, err := securetf.Train(securetf.TrainConfig{
		Model: securetf.NewCIFARCNN(3),
		XS:    xs, YS: ys,
		BatchSize: 32, Steps: 8,
		Optimizer: securetf.Adam{LR: 0.003},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trained.Close()
	if trained.LastLoss() <= 0 || trained.LastLoss() > 10 {
		t.Fatalf("loss %v out of range", trained.LastLoss())
	}
}

func TestQuantizedPaperModel(t *testing.T) {
	spec := securetf.ModelSpec{Name: "mini", FileBytes: 2 << 20, GFLOPs: 0.02, InputDim: 96, Classes: 10}
	quant, err := securetf.BuildQuantizedInferenceModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	full := securetf.BuildInferenceModel(spec)
	if quant.WeightBytes() >= full.WeightBytes()/2 {
		t.Fatalf("quantized %d not well below float %d", quant.WeightBytes(), full.WeightBytes())
	}
	cl, err := securetf.NewClassifier(nil, quant, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	out, err := cl.Run(securetf.RandomImageInput(spec, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(securetf.Shape{2, 10}) {
		t.Fatalf("output shape %v", out.Shape())
	}
}

func TestConfigHelpers(t *testing.T) {
	params := securetf.DefaultParams()
	if params.EPCSize != 94<<20 {
		t.Fatalf("default EPC %d", params.EPCSize)
	}
	params.EPCSize = 256 << 20
	p, err := securetf.NewPlatformWithParams("big-epc", params)
	if err != nil {
		t.Fatal(err)
	}
	if p.Params().EPCSize != 256<<20 {
		t.Fatal("params not applied")
	}

	img := securetf.SyntheticImage("app", 3<<20, 1<<20)
	if img.Size() != 3<<20 || img.HeapSize != 1<<20 {
		t.Fatalf("synthetic image %d/%d", img.Size(), img.HeapSize)
	}
	// Same name+size → same measurement: separate processes agree on
	// the session policy (the cmd/securetf-worker requirement).
	img2 := securetf.SyntheticImage("app", 3<<20, 1<<20)
	if !bytes.Equal(img.Content, img2.Content) {
		t.Fatal("synthetic image content not deterministic")
	}

	for _, tc := range []struct {
		rule securetf.Rule
		want string
	}{
		{securetf.EncryptPrefix("a/"), "a/"},
		{securetf.AuthenticatePrefix("b/"), "b/"},
		{securetf.PassthroughPrefix("c/"), "c/"},
	} {
		if tc.rule.Prefix != tc.want {
			t.Fatalf("rule prefix %q", tc.rule.Prefix)
		}
	}

	key, err := securetf.NewVolumeKey()
	if err != nil {
		t.Fatal(err)
	}
	again, err := securetf.VolumeKeyFromBytes(key[:])
	if err != nil {
		t.Fatal(err)
	}
	if *again != *key {
		t.Fatal("volume key round trip")
	}
	if _, err := securetf.VolumeKeyFromBytes([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}

	if keys := securetf.TrustedKeys(newPlatform(t, "x")); len(keys) != 1 {
		t.Fatalf("trusted keys %d", len(keys))
	}
}

func TestEnclaveStats(t *testing.T) {
	c := launch(t, securetf.SconeHW, securetf.TFLiteImage())
	if err := securetf.WriteFile(c.FS(), "f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	stats := c.EnclaveStats()
	if stats.AsyncSyscalls == 0 {
		t.Fatal("SCONE file I/O reported no async syscalls")
	}
	native := launch(t, securetf.NativeGlibc, securetf.Image{})
	if native.EnclaveStats() != (securetf.EnclaveStats{}) {
		t.Fatal("native container reported enclave counters")
	}
}

func TestDirFSContainer(t *testing.T) {
	dir := t.TempDir()
	c := launch(t, securetf.SconeSIM, securetf.TFLiteImage(), func(cfg *securetf.ContainerConfig) {
		cfg.HostFS = securetf.NewDirFS(dir)
	})
	if err := securetf.WriteFile(c.FS(), "sub/file.bin", []byte("real disk")); err != nil {
		t.Fatal(err)
	}
	got, err := securetf.ReadFile(c.FS(), "sub/file.bin")
	if err != nil || string(got) != "real disk" {
		t.Fatalf("round trip: %q, %v", got, err)
	}
}

func TestUnmarshalFrozenModelErrors(t *testing.T) {
	for _, bad := range [][]byte{nil, []byte("no separators"), []byte("in\x00out\x00garbage")} {
		if _, err := securetf.UnmarshalFrozenModel(bad); err == nil {
			t.Fatalf("bad frozen model %q accepted", bad)
		}
	}
}

func TestClassifierRejectsBadOutputShapeUse(t *testing.T) {
	// Classify on a model whose output is not [batch, classes] must be
	// rejected with a shape error, not a panic.
	spec := securetf.ModelSpec{Name: "mini", FileBytes: 1 << 20, GFLOPs: 0.01, InputDim: 64, Classes: 10}
	cl, err := securetf.NewClassifier(nil, securetf.BuildInferenceModel(spec), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Classify(securetf.RandNormal(securetf.Shape{1, 63}, 1, 1)); err == nil {
		t.Fatal("wrong input width accepted")
	}
}
